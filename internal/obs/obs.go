// Package obs is the deterministic, out-of-band observability layer:
// a lock-cheap registry of counters, gauges and fixed-bucket histograms
// that the sim engine, the suite scheduler, the result cache and the
// power integrator report through. Metrics never touch rendered
// experiment output — they exist so the cost and the failure modes of
// the measurement infrastructure itself are visible (the paper's own
// method applied to us: measure the measurer).
//
// Design constraints, in order:
//
//   - Zero perturbation: nothing in this package may influence a
//     simulation result. Metrics are written only to side channels (the
//     -report manifest, stderr summaries, Prometheus text).
//   - Cheap increments: counters are single atomic adds and allocate
//     nothing. Hot loops (the event dispatcher, the per-segment
//     integrator) keep plain local counters and flush deltas here at
//     coarse boundaries, so the per-event path stays atomic-free.
//   - Deterministic reads: Snapshot orders metrics by name (then label),
//     so two reports over identical runs are structurally identical.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds a named set of metrics. The zero value is not usable;
// use NewRegistry, or the package-level Default registry that all
// instrumented subsystems report to.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// metric is the common surface the registry keeps: every metric kind
// can snapshot itself deterministically and reset to zero.
type metric interface {
	snapshot() []Metric
	reset()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

var std = NewRegistry()

// Default returns the process-wide registry the instrumented subsystems
// (sim engine, suite scheduler, expcache, power integrator) report to.
func Default() *Registry { return std }

// Snapshot reads the default registry — shorthand for Default().Snapshot().
func Snapshot() []Metric { return std.Snapshot() }

// register adds m under name, panicking on a duplicate — metric names
// are program constants, so a collision is a programming error.
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Snapshot returns the current value of every registered metric, sorted
// by name (then by label value for vector members) so the output is
// deterministic regardless of registration or update order.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	var out []Metric
	for _, m := range ms {
		out = append(out, m.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].labelKey() < out[j].labelKey()
	})
	return out
}

// Reset zeroes every registered metric (test hook; production code
// never resets, counters are cumulative for the process lifetime).
func (r *Registry) Reset() {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.reset()
	}
}

// Metric is one snapshotted value.
type Metric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"` // "counter", "gauge" or "histogram"
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge reading (histograms use Sum/Count/
	// Buckets instead).
	Value   int64    `json:"value"`
	Sum     int64    `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket (Prometheus-style: Count is
// the number of observations <= the upper bound).
type Bucket struct {
	LE    string `json:"le"` // upper bound, "+Inf" for the last
	Count int64  `json:"count"`
}

// labelKey flattens labels for deterministic ordering.
func (m Metric) labelKey() string {
	if len(m.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + m.Labels[k] + ";"
	}
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) snapshot() []Metric {
	return []Metric{{Name: c.name, Kind: "counter", Help: c.help, Value: c.v.Load()}}
}
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshot() []Metric {
	return []Metric{{Name: g.name, Kind: "gauge", Help: g.help, Value: g.v.Load()}}
}
func (g *Gauge) reset() { g.v.Store(0) }

// Histogram accumulates int64 observations into fixed cumulative
// buckets. Bounds are upper limits in ascending order; observations
// above the last bound land in the implicit +Inf bucket. Observe is one
// linear scan plus three atomic adds — no locks, no allocation.
type Histogram struct {
	name, help string
	bounds     []int64
	buckets    []atomic.Int64 // len(bounds)+1, non-cumulative internally
	sum, count atomic.Int64
}

// Histogram registers and returns a new fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name: name, help: help,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) snapshot() []Metric {
	m := Metric{Name: h.name, Kind: "histogram", Help: h.help,
		Sum: h.sum.Load(), Count: h.count.Load()}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%d", h.bounds[i])
		}
		m.Buckets = append(m.Buckets, Bucket{LE: le, Count: cum})
	}
	return []Metric{m}
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// CounterVec is a family of counters distinguished by one label value
// (e.g. per-experiment-id run counts). Members are created on first use
// under a mutex — acceptable because vector increments happen per
// experiment or per sweep, never per event.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	m                 map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, m: map[string]*Counter{}}
	r.register(name, v)
	return v
}

// With returns the member counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{name: v.name}
		v.m[value] = c
	}
	return c
}

func (v *CounterVec) snapshot() []Metric {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Metric, 0, len(v.m))
	for val, c := range v.m {
		out = append(out, Metric{
			Name: v.name, Kind: "counter", Help: v.help,
			Labels: map[string]string{v.label: val},
			Value:  c.v.Load(),
		})
	}
	return out
}

func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m = map[string]*Counter{}
}

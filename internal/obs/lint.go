package obs

// Prometheus text-exposition conformance linting. WritePrometheus is a
// serving surface (hswsimd /metrics), so its output must stay parseable
// by real scrapers. LintPrometheus re-parses emitted text the way a
// strict scraper would and reports structural violations: it is the
// audit behind the conformance test, not a general-purpose parser.

import (
	"fmt"
	"strconv"
	"strings"
)

// LintPrometheus parses Prometheus text-exposition-format (0.0.4)
// output and returns one message per conformance violation (empty means
// clean). Checked:
//
//   - metric and label names match the Prometheus grammar
//   - every sample is preceded by a # TYPE for its family, with a
//     recognized type (counter, gauge, histogram)
//   - no duplicate series (same name + label set twice)
//   - counter/gauge values parse as numbers
//   - histograms: cumulative _bucket counts are non-decreasing, the
//     terminal bucket is le="+Inf", and _sum/_count series exist with
//     _count equal to the +Inf bucket's count
func LintPrometheus(text string) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	types := map[string]string{} // family -> declared type
	seen := map[string]bool{}    // full series key -> emitted already
	type histState struct {
		lastCum  int64
		lastLE   string
		buckets  int
		infCount int64
		sawInf   bool
		sawSum   bool
		sawCount bool
		count    int64
	}
	hists := map[string]*histState{}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				bad("line %d: malformed comment %q", lineNo, line)
				continue
			}
			if !validMetricName(fields[2]) {
				bad("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					bad("line %d: TYPE missing type", lineNo)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					bad("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					bad("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					hists[fields[2]] = &histState{}
				}
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			bad("line %d: malformed sample %q", lineNo, line)
			continue
		}
		if !validMetricName(name) {
			bad("line %d: invalid metric name %q", lineNo, name)
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			bad("line %d: value %q is not a number", lineNo, value)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			bad("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true

		family := name
		var part string
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if _, isHist := hists[base]; isHist {
					family, part = base, suf
				}
				break
			}
		}
		if _, typed := types[family]; !typed {
			bad("line %d: sample %q has no preceding TYPE", lineNo, name)
			continue
		}
		h := hists[family]
		if h == nil {
			if part != "" {
				bad("line %d: %s series for non-histogram %q", lineNo, part, family)
			}
			continue
		}
		switch part {
		case "_bucket":
			le, found := labelValue(labels, "le")
			if !found {
				bad("line %d: histogram bucket without le label", lineNo)
				continue
			}
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				bad("line %d: bucket count %q not an integer", lineNo, value)
				continue
			}
			if h.buckets > 0 && cum < h.lastCum {
				bad("line %d: %s cumulative count decreased (%d after %d)",
					lineNo, family, cum, h.lastCum)
			}
			if h.sawInf {
				bad("line %d: %s bucket le=%q after le=\"+Inf\"", lineNo, family, le)
			}
			if le == "+Inf" {
				h.sawInf = true
				h.infCount = cum
			}
			h.lastCum, h.lastLE, h.buckets = cum, le, h.buckets+1
		case "_sum":
			h.sawSum = true
		case "_count":
			h.sawCount = true
			h.count, _ = strconv.ParseInt(value, 10, 64)
		default:
			bad("line %d: bare sample %q for histogram family", lineNo, name)
		}
	}

	for family, h := range hists {
		switch {
		case h.buckets == 0:
			bad("histogram %s has no buckets", family)
		case !h.sawInf:
			bad("histogram %s: terminal bucket is le=%q, want le=\"+Inf\"", family, h.lastLE)
		}
		if !h.sawSum {
			bad("histogram %s missing _sum", family)
		}
		if !h.sawCount {
			bad("histogram %s missing _count", family)
		} else if h.sawInf && h.count != h.infCount {
			bad("histogram %s: _count %d != +Inf bucket count %d", family, h.count, h.infCount)
		}
	}
	return problems
}

// parseSample splits `name{labels} value` (labels optional). The label
// body is returned raw; conformance only needs le extraction.
func parseSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", false
		}
		labels = rest[i+1 : j]
		rest = strings.TrimPrefix(rest[j+1:], " ")
	} else {
		i = strings.IndexByte(rest, ' ')
		if i < 0 {
			return "", "", "", false
		}
		name = rest[:i]
		rest = rest[i+1:]
	}
	if name == "" || rest == "" || strings.ContainsAny(rest, " ") {
		return "", "", "", false
	}
	return name, labels, rest, true
}

// labelValue extracts one label's (unquoted) value from a raw label body.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != key {
			continue
		}
		unq, err := strconv.Unquote(v)
		if err != nil {
			return "", false
		}
		return unq, true
	}
	return "", false
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

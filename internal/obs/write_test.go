package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	r := NewRegistry()
	r.Counter("a_total", "helper a").Add(3)
	v := r.CounterVec("runs_total", "runs", "id")
	v.With("tab1").Inc()
	h := r.Histogram("wait_ns", "waits", []int64{100})
	h.Observe(50)
	h.Observe(500)
	return &Manifest{
		Tool: "experiments",
		Args: map[string]string{"scale": "0.25"},
		Experiments: []ExperimentInfo{
			{ID: "tab1", ElapsedMS: 12, Bytes: 100},
			{ID: "tab2", Cached: true, ElapsedMS: 1, Bytes: 50},
			{ID: "fig9", Err: "boom"},
		},
		Failed:  1,
		WallMS:  13,
		Metrics: r.Snapshot(),
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := testManifest()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Tool != "experiments" || len(back.Experiments) != 3 || back.Failed != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if mm, ok := back.Metric("a_total"); !ok || mm.Value != 3 {
		t.Fatalf("Metric lookup: %+v %v", mm, ok)
	}
	if _, ok := back.Metric("nope"); ok {
		t.Fatal("Metric found a metric that does not exist")
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	testManifest().WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"3 experiments", "(1 FAILED)", "cache hit",
		"FAILED: boom", "a_total", "runs_total{id=\"tab1\"}", "wait_ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	m := testManifest()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m.Metrics); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		`runs_total{id="tab1"} 1`,
		"# TYPE wait_ns histogram",
		`wait_ns_bucket{le="100"} 1`,
		`wait_ns_bucket{le="+Inf"} 2`,
		"wait_ns_sum 550",
		"wait_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with multiple labeled members.
	v := NewRegistry().CounterVec("x_total", "", "id")
	v.With("a").Inc()
	v.With("b").Inc()
	buf.Reset()
	if err := WritePrometheus(&buf, v.snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "# TYPE x_total") != 1 {
		t.Fatalf("TYPE line repeated:\n%s", buf.String())
	}
}

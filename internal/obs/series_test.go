package obs

import (
	"sync"
	"testing"
)

func TestSeriesIndicesMonotoneUnderConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 200
	s := NewSeries(writers * perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add([]Metric{{Name: "m", Value: int64(i)}})
			}
		}()
	}
	wg.Wait()
	all := s.Since(0)
	if len(all) != writers*perWriter {
		t.Fatalf("retained %d samples, want %d", len(all), writers*perWriter)
	}
	// Indices are exactly 1..N with ring order == index order: the
	// index is assigned under the same lock as the append, so no
	// interleaving can reorder or duplicate.
	for i, sm := range all {
		if sm.Index != int64(i+1) {
			t.Fatalf("sample %d has index %d, want %d", i, sm.Index, i+1)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped %d with ring at capacity %d", s.Dropped(), writers*perWriter)
	}
}

func TestSeriesWraparound(t *testing.T) {
	s := NewSeries(4)
	for i := 1; i <= 10; i++ {
		s.Add([]Metric{{Name: "m", Value: int64(i)}})
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	all := s.Since(0)
	for i, sm := range all {
		want := int64(7 + i)
		if sm.Index != want {
			t.Fatalf("sample %d index = %d, want %d (oldest evicted first)", i, sm.Index, want)
		}
		if sm.Metrics[0].Value != want {
			t.Fatalf("sample %d payload = %d, want %d", i, sm.Metrics[0].Value, want)
		}
	}
	// Replay cursor semantics: Since(after) is exclusive.
	if got := s.Since(9); len(got) != 1 || got[0].Index != 10 {
		t.Fatalf("Since(9) = %v, want just index 10", got)
	}
	if got := s.Since(10); len(got) != 0 {
		t.Fatalf("Since(10) returned %d samples, want 0", len(got))
	}
	last, ok := s.Latest()
	if !ok || last.Index != 10 {
		t.Fatalf("Latest = %v/%v, want index 10", last, ok)
	}
}

func TestSeriesWaitWakesOnAdd(t *testing.T) {
	s := NewSeries(2)
	ch := s.Wait()
	select {
	case <-ch:
		t.Fatal("Wait channel closed before any Add")
	default:
	}
	done := make(chan int64, 1)
	go func() {
		<-ch
		got := s.Since(0)
		done <- got[len(got)-1].Index
	}()
	s.Add([]Metric{{Name: "m"}})
	if idx := <-done; idx != 1 {
		t.Fatalf("waiter saw tail index %d, want 1", idx)
	}
	// A Wait channel fetched before an Add that already happened is
	// closed — the drain-then-wait loop cannot lose a wakeup.
	ch2 := s.Wait()
	s.Add([]Metric{{Name: "m"}})
	select {
	case <-ch2:
	default:
		t.Fatal("pre-Add Wait channel not closed by Add")
	}
}

func TestSeriesSnapshotsAreNameSorted(t *testing.T) {
	// The serving path stores Registry.Snapshot() output; assert the
	// contract the stream relies on (sorted by name) holds end to end.
	r := NewRegistry()
	r.Counter("zzz_total", "").Inc()
	r.Counter("aaa_total", "").Inc()
	r.Gauge("mmm", "").Set(3)
	s := NewSeries(2)
	s.Add(r.Snapshot())
	sm, ok := s.Latest()
	if !ok {
		t.Fatal("empty series")
	}
	for i := 1; i < len(sm.Metrics); i++ {
		if sm.Metrics[i-1].Name > sm.Metrics[i].Name {
			t.Fatalf("snapshot not name-sorted: %q before %q",
				sm.Metrics[i-1].Name, sm.Metrics[i].Name)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Manifest is the machine-readable run report cmd/experiments emits for
// -report: what was run, how long each experiment took, and the full
// metrics snapshot. It is strictly out-of-band — nothing in it feeds
// back into experiment output.
type Manifest struct {
	Tool string `json:"tool"`
	// Args records the effective request (ids, scale, seed, format).
	Args        map[string]string `json:"args,omitempty"`
	Experiments []ExperimentInfo  `json:"experiments"`
	// Failed counts experiments whose Err is set.
	Failed  int      `json:"failed"`
	WallMS  int64    `json:"wall_ms"`
	Metrics []Metric `json:"metrics"`
	// Traces lists the virtual-time trace collectors a -trace-vt run
	// captured, with per-buffer drop counts so a truncated export is
	// visible in the report, not just in aggregate counters.
	Traces []TraceInfo `json:"traces,omitempty"`
	// Harness summarizes the wall-clock harness spans by category
	// (experiment / sweep point / scheduler slot occupancy).
	Harness []HarnessCat `json:"harness,omitempty"`
	// Profile summarizes a -eprof run's captured energy profile. Its
	// EnergyNJ is an exact integer invariant: the folded export's value
	// column sums to precisely this number (the CI gate checks it).
	Profile *ProfileInfo `json:"profile,omitempty"`
}

// ProfileInfo is the captured energy profile's volume and totals.
type ProfileInfo struct {
	Stacks     int   `json:"stacks"`
	EnergyNJ   int64 `json:"energy_nj"`
	VTimeNS    int64 `json:"vtime_ns"`
	DurationNS int64 `json:"duration_ns"`
}

// TraceInfo is one captured trace collector's volume and drop counts.
type TraceInfo struct {
	Label      string `json:"label"`
	Events     int    `json:"events"`
	EventDrops int64  `json:"event_drops"`
	Spans      int    `json:"spans"`
	OpenSpans  int    `json:"open_spans"`
	SpanDrops  int64  `json:"span_drops"`
}

// HarnessCat is one wall-clock harness span category's aggregate.
type HarnessCat struct {
	Cat     string `json:"cat"`
	Count   int    `json:"count"`
	TotalMS int64  `json:"total_ms"`
}

// ExperimentInfo is one experiment's outcome in the manifest.
type ExperimentInfo struct {
	ID        string `json:"id"`
	Cached    bool   `json:"cached"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Bytes     int    `json:"bytes"`
	Err       string `json:"err,omitempty"`
}

// WriteJSON emits the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Metric looks up a snapshotted metric by name (first label match wins
// for vectors); ok reports whether it exists.
func (m *Manifest) Metric(name string) (Metric, bool) {
	for _, mm := range m.Metrics {
		if mm.Name == name {
			return mm, true
		}
	}
	return Metric{}, false
}

// WriteSummary renders the manifest as a short human report: per-
// experiment timing, then the counters that tell whether the run's fast
// paths worked and whether anything degraded silently.
func (m *Manifest) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "run report: %d experiments", len(m.Experiments))
	if m.Failed > 0 {
		fmt.Fprintf(w, " (%d FAILED)", m.Failed)
	}
	fmt.Fprintf(w, ", wall %d ms\n", m.WallMS)
	for _, e := range m.Experiments {
		how := "ran"
		if e.Cached {
			how = "cache hit"
		}
		if e.Err != "" {
			how = "FAILED: " + e.Err
		}
		fmt.Fprintf(w, "  %-11s %8d ms  %8d B  %s\n", e.ID, e.ElapsedMS, e.Bytes, how)
	}
	if len(m.Traces) > 0 {
		fmt.Fprintln(w, "traces:")
		for _, t := range m.Traces {
			fmt.Fprintf(w, "  %-16s %6d spans (%d dropped, %d open)  %6d events (%d dropped)\n",
				t.Label, t.Spans, t.SpanDrops, t.OpenSpans, t.Events, t.EventDrops)
		}
	}
	if m.Profile != nil {
		fmt.Fprintf(w, "energy profile: %d stacks, %.3f J, %.3f s virtual\n",
			m.Profile.Stacks, float64(m.Profile.EnergyNJ)/1e9,
			float64(m.Profile.DurationNS)/1e9)
	}
	if len(m.Harness) > 0 {
		fmt.Fprintln(w, "harness spans:")
		for _, h := range m.Harness {
			fmt.Fprintf(w, "  %-16s %6d spans, %d ms total\n", h.Cat, h.Count, h.TotalMS)
		}
	}
	fmt.Fprintln(w, "counters:")
	for _, mm := range m.Metrics {
		if mm.Kind == "histogram" {
			fmt.Fprintf(w, "  %-36s count %d sum %d\n", mm.Name, mm.Count, mm.Sum)
			continue
		}
		name := mm.Name
		if len(mm.Labels) > 0 {
			name += "{" + promLabels(mm.Labels) + "}"
		}
		fmt.Fprintf(w, "  %-36s %d\n", name, mm.Value)
	}
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (version 0.0.4) — the serving surface a future daemonized mode
// scrapes; today it backs -report and tests.
func WritePrometheus(w io.Writer, ms []Metric) error {
	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.Name] {
			seen[m.Name] = true
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, b.LE, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, m.Sum, m.Name, m.Count); err != nil {
				return err
			}
		default:
			labels := ""
			if len(m.Labels) > 0 {
				labels = "{" + promLabels(m.Labels) + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, labels, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set as k="v",... in sorted key order (the
// Labels maps are built with a single key, but keep it general).
func promLabels(labels map[string]string) string {
	m := Metric{Labels: labels}
	// labelKey yields "k=v;" pairs already sorted.
	parts := strings.Split(strings.TrimSuffix(m.labelKey(), ";"), ";")
	for i, p := range parts {
		k, v, _ := strings.Cut(p, "=")
		parts[i] = fmt.Sprintf("%s=%q", k, v)
	}
	return strings.Join(parts, ",")
}

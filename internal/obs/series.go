package obs

import (
	"sync"
)

// Sample is one snapshot of the registry captured into a Series, tagged
// with a monotone index. Indices start at 1 and never repeat, so a
// streaming consumer (the SSE endpoint) can resume from any point: the
// index doubles as the SSE event id, and Since(lastSeen) is exactly the
// replay the Last-Event-ID header asks for.
type Sample struct {
	Index   int64    `json:"index"`
	Metrics []Metric `json:"metrics"`
}

// Series is a fixed-capacity ring of metric snapshots — the sampled
// time-series layer behind hswsimd's /v1/stream. Writers append whole
// snapshots (already name-sorted by Registry.Snapshot); the ring keeps
// the most recent cap samples and drops the oldest on wraparound.
// Index assignment happens under the same lock as the append, so even
// with concurrent writers every sample gets a unique, strictly
// increasing index and the ring order equals the index order — readers
// never observe a gap except by eviction, which Dropped counts.
type Series struct {
	mu    sync.Mutex
	buf   []Sample // ring storage, len == cap once full
	head  int      // next write position
	count int      // number of valid samples (≤ cap(buf))
	next  int64    // next index to assign (starts at 1)
	drops int64    // samples evicted by wraparound
	wake  chan struct{} // closed and replaced on every Add (broadcast)
}

// NewSeries returns a ring holding at most capacity samples.
// capacity < 1 is rounded up to 1.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{
		buf:  make([]Sample, capacity),
		next: 1,
		wake: make(chan struct{}),
	}
}

// Add appends a snapshot and returns its assigned index. The caller
// hands over ms; it must not mutate it afterwards.
func (s *Series) Add(ms []Metric) int64 {
	s.mu.Lock()
	idx := s.next
	s.next++
	if s.count == len(s.buf) {
		s.drops++
	} else {
		s.count++
	}
	s.buf[s.head] = Sample{Index: idx, Metrics: ms}
	s.head = (s.head + 1) % len(s.buf)
	wake := s.wake
	s.wake = make(chan struct{})
	s.mu.Unlock()
	close(wake)
	return idx
}

// Since returns all retained samples with Index > after, oldest first.
// after = 0 replays everything still in the ring.
func (s *Series) Since(after int64) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.count)
	start := s.head - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		sm := s.buf[(start+i)%len(s.buf)]
		if sm.Index > after {
			out = append(out, sm)
		}
	}
	return out
}

// Latest returns the most recent sample; ok is false if the ring is
// empty.
func (s *Series) Latest() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Sample{}, false
	}
	i := s.head - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// Len returns the number of samples currently retained.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Dropped returns the number of samples evicted by wraparound.
func (s *Series) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Wait returns a channel that is closed when a sample newer than the
// current tail arrives. Streaming consumers loop: drain Since(last),
// then block on Wait (racing an Add between the two is fine — the
// channel returned here was swapped by that Add and is already closed).
func (s *Series) Wait() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wake
}

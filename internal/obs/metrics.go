package obs

// The canonical metric set every instrumented subsystem reports to, on
// the Default registry. Names follow Prometheus conventions (_total for
// counters, explicit units) so the exposition writer needs no mapping.
//
// Hot-path contributors (the event dispatcher, the per-segment power
// integrator) do not touch these atomics per event: they keep plain
// single-goroutine counters and flush deltas at run boundaries — see
// sim.Engine and core.System.
var (
	// Sim engine: dispatch volume, timer-pool effectiveness, forks.
	SimEventsDispatched = std.Counter("sim_events_dispatched_total",
		"events dispatched across all sim engines")
	SimTimerPoolReuse = std.Counter("sim_timer_pool_reuse_total",
		"timer entries recycled from an engine free list")
	SimTimerPoolAlloc = std.Counter("sim_timer_pool_alloc_total",
		"timer entries newly allocated (free list empty)")
	SimForks = std.Counter("sim_forks_total",
		"engine forks (one per parallel sweep point)")
	SimTickCoalesced = std.Counter("sim_tick_coalesce_joins_total",
		"periodic arms absorbed into a shared tick group instead of an own queue slot")

	// Platform forks: copy-on-write System.Fork cost and child reuse.
	// The wall histogram is the fork latency budget gate (~10 us
	// target); the bytes counter tracks eagerly copied state (struct
	// shells + register file — COW backings excluded until written).
	CoreForkReuse = std.Counter("core_fork_child_reuse_total",
		"forks served from the released-child free list (no fresh allocation)")
	CoreForkBytes = std.Counter("core_fork_copied_bytes_total",
		"bytes copied eagerly per platform fork (shells + MSR file; COW shares excluded)")
	CoreForkWall = std.Histogram("core_fork_wall_ns",
		"wall-clock latency of core.System.Fork",
		[]int64{500, 1_000, 2_000, 5_000, 10_000, 25_000, 100_000, 1_000_000})

	// Suite scheduler: slot pressure on the shared compute pool.
	SchedSlots = std.Gauge("sched_slots",
		"compute slots in the shared pool (GOMAXPROCS)")
	SchedSlotsBusy = std.Gauge("sched_slots_busy",
		"compute slots currently held")
	SchedSlotAcquires = std.Counter("sched_slot_acquires_total",
		"slot acquisitions (suite-level experiments + point-level helpers)")
	SchedSlotWaitNS = std.Counter("sched_slot_wait_ns_total",
		"total nanoseconds spent waiting for a compute slot")
	SchedSlotWait = std.Histogram("sched_slot_wait_ns",
		"distribution of time spent waiting for a compute slot",
		[]int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000,
			100_000_000, 1_000_000_000, 10_000_000_000})
	SchedSteals = std.Counter("sched_shard_steals_total",
		"sharded fan-out work items claimed from another worker's shard")
	SchedSlotCancels = std.Counter("sched_slot_acquire_cancels_total",
		"cancellable slot waits abandoned (context done before a slot freed)")
	SchedQueueDepth = std.Gauge("sched_queue_depth",
		"callers currently waiting in a bounded admission queue")
	SchedQueueSheds = std.Counter("sched_queue_shed_total",
		"slot acquisitions rejected because the admission queue was at depth")

	// Fleet driver: batch fork fan-out volume and round latency.
	FleetNodes = std.Counter("fleet_nodes_forked_total",
		"fleet nodes forked (and varied) from a warmed parent platform")
	FleetSteps = std.Counter("fleet_node_steps_total",
		"per-node fleet step operations executed")
	FleetWall = std.Histogram("fleet_round_wall_ns",
		"wall-clock latency of one parallel fleet round (fan-out or whole-fleet step)",
		[]int64{100_000, 1_000_000, 10_000_000, 100_000_000,
			1_000_000_000, 10_000_000_000, 60_000_000_000})

	// Experiments: per-id run counts and point-sweep volume.
	ExpRuns = std.CounterVec("exp_runs_total",
		"experiments executed live (cache misses included, hits excluded)", "id")
	ExpPoints = std.Counter("exp_sweep_points_total",
		"point-level work items executed by parallelMap")

	// Result cache.
	CacheHits = std.Counter("expcache_hits_total",
		"result cache hits (rendered bytes replayed)")
	CacheMisses = std.Counter("expcache_misses_total",
		"result cache misses (live run required)")
	CacheEvictions = std.Counter("expcache_evictions_total",
		"corrupt or stale cache entries evicted on read")
	CachePutFailures = std.Counter("expcache_put_failures_total",
		"cache writes that failed (result not persisted; run unaffected)")
	CacheOrphansSwept = std.Counter("expcache_orphans_swept_total",
		"stale .put-* temp files left by crashed writers, removed on Open")

	// Power integrator: change-driven segment accounting.
	PowerSegReplays = std.Counter("power_segments_replayed_total",
		"integration segments served by the memoized steady-state replay")
	PowerSegFulls = std.Counter("power_segments_full_total",
		"integration segments that re-solved the full operating point")

	// Virtual-time tracing: span/event volume and ring overwrites.
	// Drop counters are the "no silent caps" guard for the bounded
	// rings — nonzero means the exported trace is truncated and the
	// collector capacity (or the event filter) needs adjusting.
	TraceSpans = std.Counter("trace_spans_total",
		"completed virtual-time spans recorded across all collectors")
	TraceSpanDrops = std.Counter("trace_span_drops_total",
		"completed spans overwritten in full span rings (trace truncated)")
	TraceEventDrops = std.Counter("trace_event_drops_total",
		"leaf trace events overwritten in full event rings (trace truncated)")
	HarnessSpans = std.Counter("harness_spans_total",
		"wall-clock harness spans recorded (experiments, sweep points, scheduler slots)")

	// Energy profiler (internal/eprof): attribution volume and fork-delta
	// merges. Segment counts flush at run boundaries like the power
	// integrator's (the Apply hot path keeps a plain field).
	EprofSegments = std.Counter("eprof_segments_attributed_total",
		"integration segments attributed into an energy profile")
	EprofMerges = std.Counter("eprof_point_merges_total",
		"forked sweep-point profile deltas merged back into a parent collector")

	// Serving layer (cmd/hswsimd): request volume by endpoint, the
	// coalescing and load-shedding outcomes, and live-run latency. The
	// failure counter is part of the zero-on-clean-run contract below.
	ServerRequests = std.CounterVec("server_requests_total",
		"HTTP requests received, by endpoint", "endpoint")
	ServerCoalesced = std.Counter("server_coalesced_total",
		"run requests that joined an identical in-flight run instead of executing")
	ServerCacheHits = std.Counter("server_cache_hits_total",
		"run requests answered from the result cache without a live run")
	ServerShed = std.Counter("server_shed_total",
		"run requests rejected with 429 (admission queue at depth)")
	ServerDrainRejects = std.Counter("server_drain_rejects_total",
		"requests rejected with 503 because the server was draining")
	ServerInflight = std.Gauge("server_inflight_runs",
		"live experiment runs currently executing in the server")
	ServerRunWall = std.Histogram("server_run_wall_ns",
		"wall-clock latency of live (uncached, uncoalesced) server runs",
		[]int64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
			10_000_000_000, 60_000_000_000})
	ServerFailures = std.Counter("server_failures_total",
		"run requests that failed with an internal error (HTTP 500)")
	ServerStreamSamples = std.Counter("server_stream_samples_total",
		"metric snapshots appended to the server's time-series ring")
	ServerStreamClients = std.Gauge("server_stream_clients",
		"SSE clients currently attached to /v1/stream")

	// Silent-failure counters: zero on a clean run, nonzero when a
	// previously invisible degradation happened (surfaced by -report).
	RAPLWindowErrors = std.Counter("rapl_window_errors_total",
		"RAPLPowerW calls rejected (invalid window or MSR read failure)")
	StatsEmptyInputs = std.Counter("stats_empty_input_total",
		"statistics requested over empty inputs (defined zero returned)")
)

package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas ignored: counters are monotonic
	g.Set(10)
	g.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "waits", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 1000, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 6026 {
		t.Fatalf("count=%d sum=%d, want 5/6026", h.Count(), h.Sum())
	}
	ms := r.Snapshot()
	if len(ms) != 1 || ms[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", ms)
	}
	// Cumulative: <=10: 2, <=100: 3, <=1000: 4, +Inf: 5.
	want := []Bucket{{"10", 2}, {"100", 3}, {"1000", 4}, {"+Inf", 5}}
	for i, b := range ms[0].Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", "", []int64{10, 10})
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name accepted")
		}
	}()
	r.Counter("dup", "")
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "")
	r.Counter("aa_total", "")
	v := r.CounterVec("mm_total", "", "id")
	v.With("b").Inc()
	v.With("a").Add(2)
	ms := r.Snapshot()
	got := make([]string, len(ms))
	for i, m := range ms {
		got[i] = m.Name + m.labelKey()
	}
	want := []string{"aa_total", "mm_totalid=a;", "mm_totalid=b;", "zz_total"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if ms[1].Value != 2 || ms[2].Value != 1 {
		t.Fatalf("vec values wrong: %+v", ms[1:3])
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []int64{50})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}

// TestIncrementAllocFree pins the overhead budget: counter and
// histogram updates must not allocate (the bench_snapshot gate keeps
// allocs/op exact on the instrumented hot paths).
func TestIncrementAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []int64{10, 100})
	g := r.Gauge("g", "")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(42)
	}); n != 0 {
		t.Fatalf("metric updates allocate %.1f objects/op, want 0", n)
	}
}

func TestDefaultRegistryHasCanonicalMetrics(t *testing.T) {
	for _, name := range []string{
		"sim_events_dispatched_total", "sim_forks_total",
		"sim_timer_pool_reuse_total", "sim_timer_pool_alloc_total",
		"sched_slot_acquires_total", "expcache_hits_total",
		"expcache_misses_total", "expcache_put_failures_total",
		"power_segments_replayed_total", "power_segments_full_total",
		"rapl_window_errors_total", "stats_empty_input_total",
	} {
		found := false
		for _, m := range Default().Snapshot() {
			if m.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("canonical metric %q not registered", name)
		}
	}
}

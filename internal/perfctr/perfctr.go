// Package perfctr models the hardware performance counters the paper's
// measurement tools read via LIKWID and perf_events: per-core fixed
// counters (TSC, APERF/MPERF, retired instructions, stall cycles) and
// the uncore UBOX fixed counter (UNCORE_CLOCK:UBOXFIX) used to observe
// the uncore frequency.
//
// Counters are advanced by the simulation core with exact cycle
// arithmetic; tools take snapshots and derive frequencies and rates the
// same way the paper does (e.g. a 20 us busy-wait cycle count to verify
// an actual frequency switch, or 50 one-second samples whose median
// becomes a Table IV row).
package perfctr

import (
	"hswsim/internal/sim"
)

// Core holds one logical core's counters. Counts are exact (float64
// accumulation of fractional cycles, exposed as integers).
type Core struct {
	tsc          float64
	aperf        float64
	mperf        float64
	instructions float64
	stallCycles  float64
}

// Advance accumulates dt of execution: coreGHz is the actual clock (0
// when not in C0), tscGHz the invariant TSC rate, instPerSec the
// retirement rate, stallFrac the fraction of cycles stalled.
func (c *Core) Advance(dt sim.Time, coreGHz, tscGHz, instPerSec, stallFrac float64, inC0 bool) {
	sec := dt.Seconds()
	c.tsc += tscGHz * 1e9 * sec
	if inC0 {
		// APERF counts actual cycles, MPERF counts at the TSC rate —
		// both only while in C0 (their ratio is the average frequency).
		c.aperf += coreGHz * 1e9 * sec
		c.mperf += tscGHz * 1e9 * sec
		c.instructions += instPerSec * sec
		c.stallCycles += coreGHz * 1e9 * sec * stallFrac
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	At           sim.Time
	TSC          uint64
	APERF        uint64
	MPERF        uint64
	Instructions uint64
	StallCycles  uint64
}

// Snapshot captures the counter values at the given virtual time.
func (c *Core) Snapshot(at sim.Time) Snapshot {
	return Snapshot{
		At:           at,
		TSC:          uint64(c.tsc),
		APERF:        uint64(c.aperf),
		MPERF:        uint64(c.mperf),
		Instructions: uint64(c.instructions),
		StallCycles:  uint64(c.stallCycles),
	}
}

// Interval is the difference of two snapshots.
type Interval struct {
	Dt           sim.Time
	Cycles       uint64 // APERF delta
	RefCycles    uint64 // MPERF delta
	Instructions uint64
	StallCycles  uint64
}

// Delta computes b - a. Snapshots must be ordered.
func Delta(a, b Snapshot) Interval {
	return Interval{
		Dt:           b.At - a.At,
		Cycles:       b.APERF - a.APERF,
		RefCycles:    b.MPERF - a.MPERF,
		Instructions: b.Instructions - a.Instructions,
		StallCycles:  b.StallCycles - a.StallCycles,
	}
}

// FreqGHz returns the average running frequency over the interval
// (APERF/wall time) — what "measured core frequency" means in
// Tables IV/V.
func (iv Interval) FreqGHz() float64 {
	if iv.Dt <= 0 {
		return 0
	}
	return float64(iv.Cycles) / iv.Dt.Seconds() / 1e9
}

// EffectiveFreqGHz returns APERF/MPERF * tscGHz: the C0-weighted
// frequency perf reports.
func (iv Interval) EffectiveFreqGHz(tscGHz float64) float64 {
	if iv.RefCycles == 0 {
		return 0
	}
	return float64(iv.Cycles) / float64(iv.RefCycles) * tscGHz
}

// GIPS returns giga-instructions per second over the interval.
func (iv Interval) GIPS() float64 {
	if iv.Dt <= 0 {
		return 0
	}
	return float64(iv.Instructions) / iv.Dt.Seconds() / 1e9
}

// IPC returns instructions per actual core cycle.
func (iv Interval) IPC() float64 {
	if iv.Cycles == 0 {
		return 0
	}
	return float64(iv.Instructions) / float64(iv.Cycles)
}

// StallFrac returns the stalled share of core cycles.
func (iv Interval) StallFrac() float64 {
	if iv.Cycles == 0 {
		return 0
	}
	return float64(iv.StallCycles) / float64(iv.Cycles)
}

// Uncore holds one package's uncore fixed counter.
type Uncore struct {
	clock float64
}

// Advance accumulates uncore cycles (a halted uncore contributes none).
func (u *Uncore) Advance(dt sim.Time, uncoreGHz float64) {
	if uncoreGHz > 0 {
		u.clock += uncoreGHz * 1e9 * dt.Seconds()
	}
}

// UncoreSnapshot is a point-in-time uncore clock reading.
type UncoreSnapshot struct {
	At    sim.Time
	Clock uint64
}

// Snapshot captures the UBOXFIX counter.
func (u *Uncore) Snapshot(at sim.Time) UncoreSnapshot {
	return UncoreSnapshot{At: at, Clock: uint64(u.clock)}
}

// UncoreFreqGHz derives the average uncore frequency between snapshots —
// the paper's UNCORE_CLOCK:UBOXFIX measurement.
func UncoreFreqGHz(a, b UncoreSnapshot) float64 {
	dt := b.At - a.At
	if dt <= 0 {
		return 0
	}
	return float64(b.Clock-a.Clock) / dt.Seconds() / 1e9
}

package perfctr

import (
	"math"
	"testing"

	"hswsim/internal/sim"
)

func TestCoreCountersAdvance(t *testing.T) {
	var c Core
	// 1 second at 2.5 GHz, TSC 2.5 GHz, 7e9 inst/s, 10% stalls, in C0.
	c.Advance(sim.Second, 2.5, 2.5, 7e9, 0.1, true)
	s := c.Snapshot(sim.Second)
	if s.APERF != 2500000000 {
		t.Fatalf("APERF = %d", s.APERF)
	}
	if s.Instructions != 7000000000 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if s.StallCycles != 250000000 {
		t.Fatalf("stalls = %d", s.StallCycles)
	}
}

func TestIdleCoreOnlyTSCAdvances(t *testing.T) {
	var c Core
	c.Advance(sim.Second, 0, 2.5, 0, 0, false)
	s := c.Snapshot(sim.Second)
	if s.TSC == 0 {
		t.Fatal("TSC must be invariant (advances while idle)")
	}
	if s.APERF != 0 || s.MPERF != 0 || s.Instructions != 0 {
		t.Fatalf("idle core advanced C0 counters: %+v", s)
	}
}

func TestIntervalDerivations(t *testing.T) {
	var c Core
	a := c.Snapshot(0)
	// Half the time at 2.5 GHz, half idle.
	c.Advance(sim.Second/2, 2.5, 2.5, 5e9, 0.2, true)
	c.Advance(sim.Second/2, 0, 2.5, 0, 0, false)
	b := c.Snapshot(sim.Second)
	iv := Delta(a, b)
	if f := iv.FreqGHz(); math.Abs(f-1.25) > 1e-9 {
		t.Fatalf("wall-time frequency = %v, want 1.25 (50%% duty)", f)
	}
	if f := iv.EffectiveFreqGHz(2.5); math.Abs(f-2.5) > 1e-9 {
		t.Fatalf("APERF/MPERF frequency = %v, want 2.5 (C0-weighted)", f)
	}
	if g := iv.GIPS(); math.Abs(g-2.5) > 1e-9 {
		t.Fatalf("GIPS = %v, want 2.5", g)
	}
	if ipc := iv.IPC(); math.Abs(ipc-2.0) > 1e-9 {
		t.Fatalf("IPC = %v, want 2.0", ipc)
	}
	if s := iv.StallFrac(); math.Abs(s-0.2) > 1e-9 {
		t.Fatalf("stall fraction = %v, want 0.2", s)
	}
}

func TestIntervalDegenerate(t *testing.T) {
	var iv Interval
	if iv.FreqGHz() != 0 || iv.GIPS() != 0 || iv.IPC() != 0 || iv.StallFrac() != 0 || iv.EffectiveFreqGHz(2.5) != 0 {
		t.Fatal("zero interval must derive zeros")
	}
}

func TestUncoreCounter(t *testing.T) {
	var u Uncore
	a := u.Snapshot(0)
	u.Advance(10*sim.Second, 3.0)
	b := u.Snapshot(10 * sim.Second)
	if f := UncoreFreqGHz(a, b); math.Abs(f-3.0) > 1e-9 {
		t.Fatalf("uncore frequency = %v, want 3.0", f)
	}
	// Halted uncore: counter frozen.
	u.Advance(sim.Second, 0)
	c := u.Snapshot(11 * sim.Second)
	if c.Clock != b.Clock {
		t.Fatal("halted uncore advanced its clock")
	}
	if UncoreFreqGHz(b, b) != 0 {
		t.Fatal("zero-interval uncore frequency must be 0")
	}
}

func TestFrequencyMeasurementDetectsSwitch(t *testing.T) {
	// The modified-FTaLaT verification: a 20 us busy-wait cycle count
	// distinguishes 1.2 from 1.3 GHz.
	var c Core
	c.Advance(20*sim.Microsecond, 1.2, 2.5, 1.2e9, 0, true)
	s1 := c.Snapshot(20 * sim.Microsecond)
	c.Advance(20*sim.Microsecond, 1.3, 2.5, 1.3e9, 0, true)
	s2 := c.Snapshot(40 * sim.Microsecond)
	f1 := Delta(Snapshot{}, s1).FreqGHz()
	f2 := Delta(s1, s2).FreqGHz()
	if math.Abs(f1-1.2) > 0.01 || math.Abs(f2-1.3) > 0.01 {
		t.Fatalf("20us windows measured %v / %v, want 1.2 / 1.3", f1, f2)
	}
}

module hswsim

go 1.24

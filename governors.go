package hswsim

import (
	"hswsim/internal/governor"
	"hswsim/internal/sim"
)

// Governor decides per-CPU p-states from observed execution; see the
// provided implementations below.
type Governor = governor.Governor

// GovernorRunner periodically samples cores and applies a governor.
type GovernorRunner = governor.Runner

// The classic cpufreq-style governors plus the paper-motivated
// memory-aware policy (drop the clock when memory-stalled — free on
// Haswell-EP because DRAM bandwidth no longer tracks the core clock).
func PerformanceGovernor() Governor  { return governor.Performance{} }
func PowersaveGovernor() Governor    { return governor.Powersave{} }
func OnDemandGovernor() Governor     { return governor.OnDemand{} }
func ConservativeGovernor() Governor { return governor.Conservative{} }
func MemoryAwareGovernor() Governor  { return governor.MemoryAware{} }

// AttachGovernor starts a governor over the given CPUs with the given
// sampling period. Stop it via the returned runner.
func AttachGovernor(sys *System, g Governor, cpus []int, period Time) *GovernorRunner {
	r := governor.NewRunner(sys, g, cpus, sim.Time(period))
	r.Start()
	return r
}

// DCTResult is the outcome of a dynamic-concurrency-throttling search.
type DCTResult = governor.DCTResult

// DCTOptimize searches concurrency x frequency for the most
// energy-efficient configuration of a kernel meeting a bandwidth floor.
func DCTOptimize(mkSys func() (*System, error), k Kernel, minGBs float64, measure Time) (*DCTResult, error) {
	return governor.DCTOptimize(mkSys, k, minGBs, sim.Time(measure))
}

// EDPOptimizer is an online energy-delay-product hill climber driven by
// RAPL feedback — the kind of controller the paper's measured-RAPL
// accuracy makes trustworthy.
type EDPOptimizer = governor.EDPRunner

// AttachEDPOptimizer starts the optimizer over one socket.
func AttachEDPOptimizer(sys *System, socket int, period Time) *EDPOptimizer {
	r := governor.NewEDPRunner(sys, socket, sim.Time(period))
	r.Start()
	return r
}

# hswsim build/test entry points. Everything is standard-library Go;
# there is nothing to configure.

GO ?= go

.PHONY: all build test vet race bench bench-snapshot ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench: one iteration of every benchmark — a smoke test that the
# benchmark harnesses still run, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-snapshot: full measurement, refreshes BENCH_sim.json.
bench-snapshot:
	scripts/bench_snapshot.sh

# ci: the full gate — vet, race-enabled tests, benchmark smoke.
ci: vet race bench

# hswsim build/test entry points. Everything is standard-library Go;
# there is nothing to configure.

GO ?= go

.PHONY: all build test vet race bench bench-snapshot bench-compare golden errgate tracegate ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench: one iteration of every benchmark — a smoke test that the
# benchmark harnesses still run, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-snapshot: full measurement, refreshes BENCH_sim.json.
bench-snapshot:
	scripts/bench_snapshot.sh

# bench-compare: perf-regression guard — fresh run diffed against the
# committed BENCH_sim.json (ns/op within +/-25%; allocs/op exact for
# lean benchmarks, +/-5% for batch fan-out benchmarks).
bench-compare:
	scripts/bench_snapshot.sh -compare

# golden: the determinism gate in isolation — the full suite rendered
# with forked-parallel sweep points must be byte-identical to the
# strictly serial reference, forked platforms must evolve
# bitwise-identically to their parents, and a 256-node sharded fleet
# study must render byte-identically to its serial reference, all under
# the race detector.
golden:
	$(GO) test -race -run 'TestSuiteSerialVsParallelByteIdentical' ./internal/exp
	$(GO) test -race -run 'TestFork|TestEngineFork' ./internal/core ./internal/sim
	$(GO) test -race -run 'TestFleetStudySerialVsParallel$$' ./internal/exp
	$(GO) test -race -run 'TestFleetSerialVsParallelIdentical|TestFleetRepeatable' ./internal/fleet

# errgate: no silently discarded call results (`_ = f(...)`) outside
# test files — dropped errors must be propagated or counted in obs.
errgate:
	scripts/errgate.sh

# tracegate: no raw trace.Buffer construction or storage outside
# internal/trace — span-producing subsystems record through the
# trace.Collector so episode pairing, drop counting and Fork cloning
# cannot be bypassed.
tracegate:
	scripts/tracegate.sh

# ci: the full gate — vet, the discarded-error and raw-buffer greps,
# race-enabled tests (includes the suite scheduler determinism test),
# benchmark smoke, perf regression diff, and the
# serial-vs-forked-parallel golden comparison.
ci: vet errgate tracegate race bench bench-compare golden

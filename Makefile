# hswsim build/test entry points. Everything is standard-library Go;
# there is nothing to configure.

GO ?= go

.PHONY: all build test vet race bench bench-snapshot bench-compare golden errgate tracegate eprofgate serve-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench: one iteration of every benchmark — a smoke test that the
# benchmark harnesses still run, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-snapshot: full measurement, refreshes BENCH_sim.json.
bench-snapshot:
	scripts/bench_snapshot.sh

# bench-compare: perf-regression guard — fresh run diffed against the
# committed BENCH_sim.json (ns/op within +/-25%; allocs/op exact for
# lean benchmarks, +/-5% for batch fan-out benchmarks).
bench-compare:
	scripts/bench_snapshot.sh -compare

# golden: the determinism gate in isolation — the full suite rendered
# with forked-parallel sweep points must be byte-identical to the
# strictly serial reference, forked platforms must evolve
# bitwise-identically to their parents, and a 256-node sharded fleet
# study must render byte-identically to its serial reference, all under
# the race detector.
golden:
	$(GO) test -race -run 'TestSuiteSerialVsParallelByteIdentical' ./internal/exp
	$(GO) test -race -run 'TestFork|TestEngineFork' ./internal/core ./internal/sim
	$(GO) test -race -run 'TestFleetStudySerialVsParallel$$' ./internal/exp
	$(GO) test -race -run 'TestFleetSerialVsParallelIdentical|TestFleetRepeatable' ./internal/fleet

# errgate: no silently discarded call results (`_ = f(...)`) outside
# test files — dropped errors must be propagated or counted in obs.
errgate:
	scripts/errgate.sh

# tracegate: no raw trace.Buffer construction or storage outside
# internal/trace — span-producing subsystems record through the
# trace.Collector so episode pairing, drop counting and Fork cloning
# cannot be bypassed.
tracegate:
	scripts/tracegate.sh

# eprofgate: the energy-profiler gate — a scale-0.25 full-suite run
# with -eprof must leave stdout byte-identical, emit pprof protobuf
# that decodes in-process (no external tools) with nonzero samples,
# and emit folded stacks whose column sum equals the manifest's total
# energy exactly (integer nanojoules).
eprofgate:
	$(GO) test -count=1 -run 'TestEprofGate' ./cmd/experiments

# serve-smoke: the server lifecycle gate — start hswsimd on a random
# port, hit /healthz, run a cached and a coalesced request pair through
# the smoke client, then SIGTERM and require exit 0 plus a flushed
# drain manifest with zero failure counters.
serve-smoke:
	scripts/serve_smoke.sh

# ci: the full gate, run as ordered named steps so a failure points at
# the gate that tripped (a wheel concurrency bug should surface as
# "race-full failed", not a generic test error) — vet, the
# discarded-error and raw-buffer greps, the race-enabled full test
# suite (includes the suite scheduler determinism test), benchmark
# smoke, perf regression diff, the serial-vs-forked-parallel golden
# comparison, and the hswsimd server lifecycle smoke.
ci:
	@echo "==> ci step 1/9: vet"
	@$(MAKE) --no-print-directory vet || { echo "ci: gate 'vet' failed — go vet ./... reported issues" >&2; exit 1; }
	@echo "==> ci step 2/9: errgate"
	@$(MAKE) --no-print-directory errgate || { echo "ci: gate 'errgate' failed — discarded call result outside tests" >&2; exit 1; }
	@echo "==> ci step 3/9: tracegate"
	@$(MAKE) --no-print-directory tracegate || { echo "ci: gate 'tracegate' failed — raw trace.Buffer use outside internal/trace" >&2; exit 1; }
	@echo "==> ci step 4/9: race-full"
	@$(MAKE) --no-print-directory race || { echo "ci: gate 'race-full' failed — data race or test failure under -race" >&2; exit 1; }
	@echo "==> ci step 5/9: bench smoke"
	@$(MAKE) --no-print-directory bench || { echo "ci: gate 'bench' failed — a benchmark harness no longer runs" >&2; exit 1; }
	@echo "==> ci step 6/9: bench-compare"
	@$(MAKE) --no-print-directory bench-compare || { echo "ci: gate 'bench-compare' failed — perf regression against BENCH_sim.json" >&2; exit 1; }
	@echo "==> ci step 7/9: golden"
	@$(MAKE) --no-print-directory golden || { echo "ci: gate 'golden' failed — serial vs parallel output diverged" >&2; exit 1; }
	@echo "==> ci step 8/9: eprofgate"
	@$(MAKE) --no-print-directory eprofgate || { echo "ci: gate 'eprofgate' failed — energy profile broke stdout identity or attribution totals" >&2; exit 1; }
	@echo "==> ci step 9/9: serve-smoke"
	@$(MAKE) --no-print-directory serve-smoke || { echo "ci: gate 'serve-smoke' failed — hswsimd lifecycle (health/coalesce/drain) broke" >&2; exit 1; }
	@echo "ci: all gates passed"

// Command experiments regenerates every table and figure of the paper
// against the simulated platform.
//
// Usage:
//
//	experiments -run all            # everything (full fidelity, slow)
//	experiments -run tab4 -scale 0.1
//	experiments -run fig2,fig3 -csv
//	experiments -run ablations
//
// Experiment ids: tab1 tab2 tab3 tab4 tab5 fig1 fig2 fig3 fig4 fig5
// fig6 fig7 fig8 extensions ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hswsim/internal/cstate"
	"hswsim/internal/exp"
	"hswsim/internal/uarch"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (tab1..tab5, fig2..fig8, extensions, catalog, ablations, all)")
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-fidelity durations/sample counts")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV where the result is tabular")
	flag.Parse()

	o := exp.Options{Scale: *scale, Seed: *seed}
	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := 0

	emit := func(id string, fn func() error) {
		if !all && !want[id] {
			return
		}
		ran++
		fmt.Printf("==== %s ====\n", id)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	emit("tab1", func() error {
		t := exp.Table1()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		return nil
	})
	emit("tab2", func() error {
		t, _, err := exp.Table2(o)
		if err != nil {
			return err
		}
		printTable(t, *csv)
		return nil
	})
	emit("tab3", func() error {
		_, t, err := exp.Table3(o)
		if err != nil {
			return err
		}
		printTable(t, *csv)
		return nil
	})
	emit("tab4", func() error {
		_, t, err := exp.Table4(o)
		if err != nil {
			return err
		}
		printTable(t, *csv)
		return nil
	})
	emit("tab5", func() error {
		_, t, err := exp.Table5(o)
		if err != nil {
			return err
		}
		printTable(t, *csv)
		return nil
	})
	emit("fig1", func() error {
		fmt.Print(exp.Fig1Render())
		return nil
	})
	emit("fig2", func() error {
		for _, gen := range []uarch.Generation{uarch.SandyBridgeEP, uarch.HaswellEP} {
			r, err := exp.Fig2(gen, o)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
		}
		return nil
	})
	emit("fig3", func() error {
		r, err := exp.Fig3(o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("fig4", func() error {
		r, err := exp.Fig4(o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("fig5", func() error {
		r, err := exp.CStateLatencies(cstate.C3, o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("fig6", func() error {
		r, err := exp.CStateLatencies(cstate.C6, o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("fig7", func() error {
		r, err := exp.Fig7(o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("fig8", func() error {
		r, err := exp.Fig8(o)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		return nil
	})
	emit("extensions", func() error {
		_, t1, err := exp.PowerCapStudy(o)
		if err != nil {
			return err
		}
		printTable(t1, *csv)
		fmt.Println()
		_, t2, err := exp.IdleTableStudy(o)
		if err != nil {
			return err
		}
		printTable(t2, *csv)
		fmt.Println()
		_, t3, err := exp.DVFSDynamicStudy(o)
		if err != nil {
			return err
		}
		printTable(t3, *csv)
		fmt.Println()
		_, t4, err := exp.NUMAStudy(o)
		if err != nil {
			return err
		}
		printTable(t4, *csv)
		fmt.Println()
		_, t5, err := exp.PCPSStudy(o)
		if err != nil {
			return err
		}
		printTable(t5, *csv)
		return nil
	})
	emit("catalog", func() error {
		_, t, err := exp.KernelCatalogStudy(o)
		if err != nil {
			return err
		}
		printTable(t, *csv)
		return nil
	})
	emit("ablations", func() error {
		type abl func(exp.Options) (*exp.AblationResult, error)
		for _, fn := range []abl{
			exp.AblationPstateGrid, exp.AblationUFS, exp.AblationRAPLMode,
			exp.AblationEET, exp.AblationBudget,
		} {
			r, err := fn(o)
			if err != nil {
				return err
			}
			fmt.Print(r.Render())
			fmt.Println()
		}
		return nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id(s) %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

func printTable(t interface {
	String() string
	CSV() string
}, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

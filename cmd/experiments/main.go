// Command experiments regenerates every table and figure of the paper
// against the simulated platform.
//
// Usage:
//
//	experiments -run all            # everything (full fidelity, slow)
//	experiments -run tab4 -scale 0.1
//	experiments -run fig2,fig3 -csv
//	experiments -run ablations -report run.json
//
// Experiment ids: tab1 tab2 tab3 tab4 tab5 fig1 fig2 fig3 fig4 fig5
// fig6 fig7 fig8 extensions catalog ablations fleet.
//
// Experiments run concurrently on a shared process-wide slot pool
// (one slot per GOMAXPROCS); output is buffered per experiment and
// emitted in canonical order, byte-identical to a serial run. Rendered
// results are cached on disk keyed by (experiment, options, format,
// binary identity), so re-running an unchanged experiment replays the
// cached bytes; -no-cache forces live runs, -cache-dir moves or (when
// empty) disables the cache.
//
// -report writes a JSON run manifest (arguments, per-experiment status,
// and a snapshot of the internal metrics registry: events dispatched,
// timer-pool reuse, scheduler slot waits, cache hits/misses, and the
// silent-failure counters) and prints a short human summary on stderr.
// -report-prom writes the same metrics in Prometheus text exposition
// format. Both are strictly out-of-band: the rendered experiment bytes
// on stdout are identical with or without them.
//
// -eprof writes the run's virtual-time energy profile — every simulated
// Joule and nanosecond attributed to experiment → phase → socket → core
// → power component → kernel/AVX/p-state stacks — as pprof protobuf
// (.pb/.pb.gz/.pprof) or folded flamegraph stacks (any other path). It
// is out-of-band like -report, forces live runs like -trace-vt, and is
// deterministic: the same request emits byte-identical profiles.
//
// -cpuprofile, -memprofile and -trace write standard runtime profiles
// of the run for `go tool pprof` / `go tool trace`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"strings"
	"time"

	"hswsim/internal/exp"
	"hswsim/internal/expcache"
	"hswsim/internal/obs"
	"hswsim/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole tool behind a testable surface: flags are parsed
// from args with a local FlagSet (so tests can invoke run repeatedly in
// one process) and all output goes through the two writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runIDs := fs.String("run", "all", "comma-separated experiment ids (tab1..tab5, fig1..fig8, extensions, catalog, ablations, fleet, all)")
	scale := fs.Float64("scale", 1.0, "effort scale: 1.0 = paper-fidelity durations/sample counts")
	seed := fs.Uint64("seed", 0x5eed, "simulation seed")
	fleetNodes := fs.Int("fleet-nodes", 0, "fleet study: max fleet size (0 = scale-derived, up to 4096)")
	fleetSeed := fs.Uint64("fleet-seed", 0, "fleet study: manufacturing-variation seed (0 = -seed)")
	csv := fs.Bool("csv", false, "emit CSV where the result is tabular")
	cacheDir := fs.String("cache-dir", defaultCacheDir(), "result cache directory (empty disables caching)")
	noCache := fs.Bool("no-cache", false, "bypass the result cache: run everything live and do not store results")
	verbose := fs.Bool("v", false, "report per-experiment timing and cache status on stderr")
	reportPath := fs.String("report", "", "write a JSON run manifest (status + metrics) to this file and summarize it on stderr")
	promPath := fs.String("report-prom", "", "write the metrics snapshot in Prometheus text format to this file")
	traceVT := fs.String("trace-vt", "", "write the run's virtual-time span trace to this file (.json = Chrome trace-event format for Perfetto, anything else = text timeline); forces live runs")
	eprofPath := fs.String("eprof", "", "write the run's virtual-time energy profile to this file (.pb, .pb.gz or .pprof = pprof protobuf for `go tool pprof`/Speedscope, anything else = folded flamegraph stacks); forces live runs")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		// -h/-help is a successful outcome — the usage text was what
		// the user asked for — not a flag error. With ContinueOnError
		// it surfaces through the same error path as a genuine parse
		// failure, so distinguish it explicitly.
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 2
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 2
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	// The heap profile is written after the run body returns (not in a
	// deferred closure, whose failure could not affect the exit code).
	// The file opens up front so a bad path fails fast like the
	// -cpuprofile and -trace open paths.
	var memProfileFile *os.File
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "memprofile: %v\n", err)
			return 2
		}
		memProfileFile = f
	}
	// The energy profile opens up front for the same reason -memprofile
	// does: a bad path must fail fast with exit 2, not silently after a
	// long run.
	var eprofFile *os.File
	if *eprofPath != "" {
		f, err := os.Create(*eprofPath)
		if err != nil {
			fmt.Fprintf(stderr, "eprof: %v\n", err)
			return 2
		}
		eprofFile = f
	}
	code := runBody(runFlags{
		runIDs:     *runIDs,
		scale:      *scale,
		seed:       *seed,
		fleetNodes: *fleetNodes,
		fleetSeed:  *fleetSeed,
		csv:        *csv,
		cacheDir:   *cacheDir,
		noCache:    *noCache,
		verbose:    *verbose,
		report:     *reportPath,
		prom:       *promPath,
		traceVT:    *traceVT,
		eprof:      *eprofPath,
		eprofFile:  eprofFile,
	}, fs, stdout, stderr)
	if memProfileFile != nil {
		if err := writeMemProfile(memProfileFile); err != nil {
			fmt.Fprintf(stderr, "memprofile: %v\n", err)
			if code == 0 {
				code = 2
			}
		}
	}
	return code
}

// writeMemProfile dumps the allocs profile into the already-open file.
func writeMemProfile(f *os.File) error {
	runtime.GC() // up-to-date live-object statistics
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFlags carries the parsed request into runBody.
type runFlags struct {
	runIDs     string
	scale      float64
	seed       uint64
	fleetNodes int
	fleetSeed  uint64
	csv        bool
	cacheDir   string
	noCache    bool
	verbose    bool
	report     string
	prom       string
	traceVT    string
	eprof      string
	eprofFile  *os.File
}

// runBody resolves the request and runs the suite — everything between
// profile setup and profile teardown.
func runBody(fl runFlags, fs *flag.FlagSet, stdout, stderr io.Writer) int {
	o := exp.Options{
		Scale: fl.scale,
		Seed:  fl.seed,
		Fleet: exp.FleetOptions{Nodes: fl.fleetNodes, Seed: fl.fleetSeed},
	}

	// Resolve the request against the suite before anything runs: an
	// unknown id anywhere in the list is an up-front error, not a
	// silently dropped token.
	want := map[string]bool{}
	for _, id := range strings.Split(fl.runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	all := want["all"]
	delete(want, "all")
	var unknown []string
	for id := range want {
		if _, ok := exp.Lookup(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(stderr, "unknown experiment id(s): %s\n", strings.Join(unknown, ", "))
		fs.Usage()
		return 2
	}
	var ids []string
	for _, d := range exp.Suite() {
		if all || want[d.ID] {
			ids = append(ids, d.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "no experiments selected")
		fs.Usage()
		return 2
	}

	var cache exp.Cache
	if !fl.noCache && fl.cacheDir != "" {
		c, err := expcache.Open(fl.cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "warning: result cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}

	// Span tracing needs live runs: the trace is recorded by living
	// through the simulation, so cached bytes carry no trace.
	var spanTrace *exp.SpanTrace
	if fl.traceVT != "" {
		if cache != nil {
			fmt.Fprintln(stderr, "note: -trace-vt forces live runs (result cache bypassed)")
			cache = nil
		}
		spanTrace = exp.EnableSpanTrace(1 << 14)
		defer exp.DisableSpanTrace()
	}
	// Energy profiling likewise comes from living through the run.
	var eprofRec *exp.EnergyProfile
	if fl.eprofFile != nil {
		if cache != nil {
			fmt.Fprintln(stderr, "note: -eprof forces live runs (result cache bypassed)")
			cache = nil
		}
		eprofRec = exp.EnableEnergyProfile()
		defer exp.DisableEnergyProfile()
	}
	// Wall-clock harness spans cost one lock per experiment/point/slot;
	// record them whenever some out-of-band report will surface them.
	var harness *trace.WallCollector
	if fl.report != "" || fl.prom != "" || fl.traceVT != "" {
		harness = exp.EnableHarnessSpans(1 << 16)
		defer exp.DisableHarnessSpans()
	}

	manifest := &obs.Manifest{
		Tool: "experiments",
		Args: map[string]string{
			"run":   fl.runIDs,
			"scale": fmt.Sprintf("%g", fl.scale),
			"seed":  fmt.Sprintf("%#x", fl.seed),
			"csv":   fmt.Sprintf("%t", fl.csv),
			"cache": fmt.Sprintf("%t", cache != nil),
		},
	}
	wallStart := time.Now()

	// Run everything requested even when some experiments fail; report
	// every failure and exit nonzero at the end.
	failed := 0
	exp.RunSuite(ids, o, fl.csv, cache, func(r exp.SuiteResult) {
		info := obs.ExperimentInfo{
			ID: r.ID, Cached: r.Cached,
			ElapsedMS: r.Elapsed.Milliseconds(), Bytes: len(r.Output),
		}
		fmt.Fprintf(stdout, "==== %s ====\n", r.ID)
		if r.Err != nil {
			failed++
			info.Err = r.Err.Error()
			manifest.Experiments = append(manifest.Experiments, info)
			fmt.Fprintf(stderr, "%s: %v\n", r.ID, r.Err)
			return
		}
		stdout.Write(r.Output)
		fmt.Fprintln(stdout)
		manifest.Experiments = append(manifest.Experiments, info)
		if fl.verbose {
			how := "ran"
			if r.Cached {
				how = "cache hit"
			}
			fmt.Fprintf(stderr, "%s: %s in %v\n", r.ID, how, r.Elapsed.Round(time.Millisecond))
		}
	})
	if spanTrace != nil {
		if err := writeSpanTrace(fl.traceVT, spanTrace); err != nil {
			fmt.Fprintf(stderr, "trace-vt: %v\n", err)
			failed++
		}
	}
	if eprofRec != nil {
		if err := writeEprof(fl.eprof, fl.eprofFile, eprofRec); err != nil {
			fmt.Fprintf(stderr, "eprof: %v\n", err)
			failed++
		}
	}
	if fl.report != "" || fl.prom != "" {
		manifest.Failed = failed
		manifest.WallMS = time.Since(wallStart).Milliseconds()
		manifest.Metrics = obs.Snapshot()
		if spanTrace != nil {
			manifest.Traces = spanTrace.Infos()
		}
		if eprofRec != nil {
			info := eprofRec.Info()
			manifest.Profile = &info
		}
		for _, cat := range harness.Summary() {
			manifest.Harness = append(manifest.Harness, obs.HarnessCat{
				Cat: cat.Cat, Count: cat.Count, TotalMS: cat.Total.Milliseconds(),
			})
		}
		if fl.report != "" {
			if err := writeManifest(fl.report, manifest); err != nil {
				fmt.Fprintf(stderr, "report: %v\n", err)
				failed++
			} else {
				manifest.WriteSummary(stderr)
			}
		}
		if fl.prom != "" {
			if err := writeProm(fl.prom, manifest.Metrics); err != nil {
				fmt.Fprintf(stderr, "report-prom: %v\n", err)
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d of %d experiments failed\n", failed, len(ids))
		return 1
	}
	return 0
}

// writeSpanTrace exports the captured virtual-time trace: Chrome
// trace-event JSON for .json paths, the text timeline otherwise.
func writeSpanTrace(path string, st *exp.SpanTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".json") {
		werr = st.WriteChrome(f)
	} else {
		werr = st.WriteTimeline(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// writeEprof exports the captured energy profile into the
// already-open file: pprof protobuf for .pb/.pb.gz/.pprof paths,
// folded flamegraph stacks otherwise.
func writeEprof(path string, f *os.File, rec *exp.EnergyProfile) error {
	var werr error
	if strings.HasSuffix(path, ".pb") || strings.HasSuffix(path, ".pb.gz") ||
		strings.HasSuffix(path, ".pprof") {
		werr = rec.WritePprof(f, "")
	} else {
		werr = rec.WriteFolded(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func writeManifest(path string, m *obs.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProm(path string, ms []obs.Metric) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(f, ms); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// defaultCacheDir places the cache under the user cache directory; an
// unresolvable home disables caching rather than writing somewhere odd.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hswsim", "experiments")
}

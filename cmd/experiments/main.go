// Command experiments regenerates every table and figure of the paper
// against the simulated platform.
//
// Usage:
//
//	experiments -run all            # everything (full fidelity, slow)
//	experiments -run tab4 -scale 0.1
//	experiments -run fig2,fig3 -csv
//	experiments -run ablations -report run.json
//
// Experiment ids: tab1 tab2 tab3 tab4 tab5 fig1 fig2 fig3 fig4 fig5
// fig6 fig7 fig8 extensions catalog ablations.
//
// Experiments run concurrently on a shared process-wide slot pool
// (one slot per GOMAXPROCS); output is buffered per experiment and
// emitted in canonical order, byte-identical to a serial run. Rendered
// results are cached on disk keyed by (experiment, options, format,
// binary identity), so re-running an unchanged experiment replays the
// cached bytes; -no-cache forces live runs, -cache-dir moves or (when
// empty) disables the cache.
//
// -report writes a JSON run manifest (arguments, per-experiment status,
// and a snapshot of the internal metrics registry: events dispatched,
// timer-pool reuse, scheduler slot waits, cache hits/misses, and the
// silent-failure counters) and prints a short human summary on stderr.
// -report-prom writes the same metrics in Prometheus text exposition
// format. Both are strictly out-of-band: the rendered experiment bytes
// on stdout are identical with or without them.
//
// -cpuprofile, -memprofile and -trace write standard runtime profiles
// of the run for `go tool pprof` / `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"strings"
	"time"

	"hswsim/internal/exp"
	"hswsim/internal/expcache"
	"hswsim/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole tool behind a testable surface: flags are parsed
// from args with a local FlagSet (so tests can invoke run repeatedly in
// one process) and all output goes through the two writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runIDs := fs.String("run", "all", "comma-separated experiment ids (tab1..tab5, fig1..fig8, extensions, catalog, ablations, all)")
	scale := fs.Float64("scale", 1.0, "effort scale: 1.0 = paper-fidelity durations/sample counts")
	seed := fs.Uint64("seed", 0x5eed, "simulation seed")
	csv := fs.Bool("csv", false, "emit CSV where the result is tabular")
	cacheDir := fs.String("cache-dir", defaultCacheDir(), "result cache directory (empty disables caching)")
	noCache := fs.Bool("no-cache", false, "bypass the result cache: run everything live and do not store results")
	verbose := fs.Bool("v", false, "report per-experiment timing and cache status on stderr")
	reportPath := fs.String("report", "", "write a JSON run manifest (status + metrics) to this file and summarize it on stderr")
	promPath := fs.String("report-prom", "", "write the metrics snapshot in Prometheus text format to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 2
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 2
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	o := exp.Options{Scale: *scale, Seed: *seed}

	// Resolve the request against the suite before anything runs: an
	// unknown id anywhere in the list is an up-front error, not a
	// silently dropped token.
	want := map[string]bool{}
	for _, id := range strings.Split(*runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	all := want["all"]
	delete(want, "all")
	var unknown []string
	for id := range want {
		if _, ok := exp.Lookup(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(stderr, "unknown experiment id(s): %s\n", strings.Join(unknown, ", "))
		fs.Usage()
		return 2
	}
	var ids []string
	for _, d := range exp.Suite() {
		if all || want[d.ID] {
			ids = append(ids, d.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "no experiments selected")
		fs.Usage()
		return 2
	}

	var cache exp.Cache
	if !*noCache && *cacheDir != "" {
		c, err := expcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "warning: result cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}

	manifest := &obs.Manifest{
		Tool: "experiments",
		Args: map[string]string{
			"run":   *runIDs,
			"scale": fmt.Sprintf("%g", *scale),
			"seed":  fmt.Sprintf("%#x", *seed),
			"csv":   fmt.Sprintf("%t", *csv),
			"cache": fmt.Sprintf("%t", cache != nil),
		},
	}
	wallStart := time.Now()

	// Run everything requested even when some experiments fail; report
	// every failure and exit nonzero at the end.
	failed := 0
	exp.RunSuite(ids, o, *csv, cache, func(r exp.SuiteResult) {
		info := obs.ExperimentInfo{
			ID: r.ID, Cached: r.Cached,
			ElapsedMS: r.Elapsed.Milliseconds(), Bytes: len(r.Output),
		}
		fmt.Fprintf(stdout, "==== %s ====\n", r.ID)
		if r.Err != nil {
			failed++
			info.Err = r.Err.Error()
			manifest.Experiments = append(manifest.Experiments, info)
			fmt.Fprintf(stderr, "%s: %v\n", r.ID, r.Err)
			return
		}
		stdout.Write(r.Output)
		fmt.Fprintln(stdout)
		manifest.Experiments = append(manifest.Experiments, info)
		if *verbose {
			how := "ran"
			if r.Cached {
				how = "cache hit"
			}
			fmt.Fprintf(stderr, "%s: %s in %v\n", r.ID, how, r.Elapsed.Round(time.Millisecond))
		}
	})
	if *reportPath != "" || *promPath != "" {
		manifest.Failed = failed
		manifest.WallMS = time.Since(wallStart).Milliseconds()
		manifest.Metrics = obs.Snapshot()
		if *reportPath != "" {
			if err := writeManifest(*reportPath, manifest); err != nil {
				fmt.Fprintf(stderr, "report: %v\n", err)
				failed++
			} else {
				manifest.WriteSummary(stderr)
			}
		}
		if *promPath != "" {
			if err := writeProm(*promPath, manifest.Metrics); err != nil {
				fmt.Fprintf(stderr, "report-prom: %v\n", err)
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d of %d experiments failed\n", failed, len(ids))
		return 1
	}
	return 0
}

func writeManifest(path string, m *obs.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProm(path string, ms []obs.Metric) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(f, ms); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// defaultCacheDir places the cache under the user cache directory; an
// unresolvable home disables caching rather than writing somewhere odd.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hswsim", "experiments")
}

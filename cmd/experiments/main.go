// Command experiments regenerates every table and figure of the paper
// against the simulated platform.
//
// Usage:
//
//	experiments -run all            # everything (full fidelity, slow)
//	experiments -run tab4 -scale 0.1
//	experiments -run fig2,fig3 -csv
//	experiments -run ablations
//
// Experiment ids: tab1 tab2 tab3 tab4 tab5 fig1 fig2 fig3 fig4 fig5
// fig6 fig7 fig8 extensions catalog ablations.
//
// Experiments run concurrently on a shared process-wide slot pool
// (one slot per GOMAXPROCS); output is buffered per experiment and
// emitted in canonical order, byte-identical to a serial run. Rendered
// results are cached on disk keyed by (experiment, options, format,
// binary identity), so re-running an unchanged experiment replays the
// cached bytes; -no-cache forces live runs, -cache-dir moves or (when
// empty) disables the cache.
//
// -cpuprofile, -memprofile and -trace write standard runtime profiles
// of the run for `go tool pprof` / `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"strings"
	"time"

	"hswsim/internal/exp"
	"hswsim/internal/expcache"
)

func main() { os.Exit(run()) }

func run() int {
	runIDs := flag.String("run", "all", "comma-separated experiment ids (tab1..tab5, fig1..fig8, extensions, catalog, ablations, all)")
	scale := flag.Float64("scale", 1.0, "effort scale: 1.0 = paper-fidelity durations/sample counts")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV where the result is tabular")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "result cache directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the result cache: run everything live and do not store results")
	verbose := flag.Bool("v", false, "report per-experiment timing and cache status on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 2
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 2
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	o := exp.Options{Scale: *scale, Seed: *seed}

	// Resolve the request against the suite before anything runs: an
	// unknown id anywhere in the list is an up-front error, not a
	// silently dropped token.
	want := map[string]bool{}
	for _, id := range strings.Split(*runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	all := want["all"]
	delete(want, "all")
	var unknown []string
	for id := range want {
		if _, ok := exp.Lookup(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment id(s): %s\n", strings.Join(unknown, ", "))
		flag.Usage()
		return 2
	}
	var ids []string
	for _, d := range exp.Suite() {
		if all || want[d.ID] {
			ids = append(ids, d.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		flag.Usage()
		return 2
	}

	var cache exp.Cache
	if !*noCache && *cacheDir != "" {
		c, err := expcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}

	// Run everything requested even when some experiments fail; report
	// every failure and exit nonzero at the end.
	failed := 0
	exp.RunSuite(ids, o, *csv, cache, func(r exp.SuiteResult) {
		fmt.Printf("==== %s ====\n", r.ID)
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, r.Err)
			return
		}
		os.Stdout.Write(r.Output)
		fmt.Println()
		if *verbose {
			how := "ran"
			if r.Cached {
				how = "cache hit"
			}
			fmt.Fprintf(os.Stderr, "%s: %s in %v\n", r.ID, how, r.Elapsed.Round(time.Millisecond))
		}
	})
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d experiments failed\n", failed, len(ids))
		return 1
	}
	return 0
}

// defaultCacheDir places the cache under the user cache directory; an
// unresolvable home disables caching rather than writing somewhere odd.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hswsim", "experiments")
}

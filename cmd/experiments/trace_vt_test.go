package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hswsim/internal/obs"
)

// TestTraceVTByteIdenticalAndOutOfBand is the acceptance gate for the
// virtual-time span trace: two identical -trace-vt runs must write
// byte-identical valid Chrome trace-event JSON, and the trace must be
// strictly out-of-band — stdout stays byte-identical to an untraced run.
func TestTraceVTByteIdenticalAndOutOfBand(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-run", "fig1,fig5", "-scale", "0.05", "-seed", "0x5eed"}

	do := func(extra ...string) (stdout, stderr bytes.Buffer, code int) {
		code = run(append(append([]string{}, base...), extra...), &stdout, &stderr)
		return
	}

	plain, perr, pcode := do()
	if pcode != 0 {
		t.Fatalf("plain run exit %d, stderr:\n%s", pcode, perr.String())
	}

	traceA := filepath.Join(dir, "a.json")
	outA, errA, codeA := do("-trace-vt", traceA)
	if codeA != 0 {
		t.Fatalf("traced run exit %d, stderr:\n%s", codeA, errA.String())
	}
	traceB := filepath.Join(dir, "b.json")
	outB, errB, codeB := do("-trace-vt", traceB)
	if codeB != 0 {
		t.Fatalf("second traced run exit %d, stderr:\n%s", codeB, errB.String())
	}

	if !bytes.Equal(plain.Bytes(), outA.Bytes()) {
		t.Error("-trace-vt changed stdout")
	}
	rawA, err := os.ReadFile(traceA)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(traceB)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(rawA) {
		t.Fatalf("trace is not valid JSON (%d bytes)", len(rawA))
	}
	if !bytes.Equal(rawA, rawB) {
		t.Errorf("identical runs wrote different traces (%d vs %d bytes)", len(rawA), len(rawB))
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawA, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if !bytes.Equal(outA.Bytes(), outB.Bytes()) {
		t.Error("traced runs disagree on stdout")
	}
}

// TestTraceVTTimelineFormat: a non-.json path selects the text timeline.
func TestTraceVTTimelineFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig5", "-scale", "0.05", "-trace-vt", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("== fig5#0:")) {
		t.Fatalf("timeline missing section header:\n%.200s", raw)
	}
}

// TestTraceVTBypassesCacheAndReports: -trace-vt with a cache directory
// forces live runs (with a note), the manifest carries the per-trace
// summary, and an unwritable trace path fails the run.
func TestTraceVTBypassesCacheAndReports(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	report := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig5", "-scale", "0.05",
		"-cache-dir", cacheDir, "-trace-vt", filepath.Join(dir, "t.json"),
		"-report", report}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("result cache bypassed")) {
		t.Errorf("missing cache-bypass note, stderr:\n%s", stderr.String())
	}
	var m obs.Manifest
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Traces) == 0 || m.Traces[0].Label != "fig5#0" || m.Traces[0].Spans == 0 {
		t.Fatalf("manifest traces = %+v", m.Traces)
	}
	if len(m.Harness) == 0 {
		t.Fatal("manifest missing harness span summary")
	}

	var so, se bytes.Buffer
	badPath := filepath.Join(dir, "missing-dir", "t.json")
	if code := run([]string{"-run", "fig1", "-scale", "0.05", "-trace-vt", badPath}, &so, &se); code == 0 {
		t.Fatal("unwritable trace path did not fail the run")
	}
}

// TestMemProfileWriteFailureExitsNonzero pins the -memprofile error
// handling: a path that cannot be created fails fast with exit 2.
func TestMemProfileWriteFailureExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	bad := filepath.Join(t.TempDir(), "no-such-dir", "heap.pprof")
	code := run([]string{"-run", "fig1", "-scale", "0.05", "-memprofile", bad}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("memprofile")) {
		t.Fatalf("missing memprofile diagnostic:\n%s", stderr.String())
	}
}

// TestMemProfileWritten: the happy path still writes a parseable
// profile and exits zero.
func TestMemProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig1", "-scale", "0.05", "-memprofile", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

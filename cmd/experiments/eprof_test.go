package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hswsim/internal/eprof"
	"hswsim/internal/obs"
)

// TestEprofGate is the CI gate for the energy profiler (`make eprofgate`):
// a full-suite scale-0.25 run with -eprof must (1) leave stdout
// byte-identical to a profiling-off run, (2) emit pprof protobuf that
// decodes — with no external tools — to both sample types and nonzero
// samples, and (3) emit folded stacks whose value column sums exactly
// to the manifest's recorded total energy (the 1e-9 J reconciliation,
// exact in integer nanojoules).
func TestEprofGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite three times at scale 0.25")
	}
	dir := t.TempDir()
	base := []string{"-run", "all", "-scale", "0.25", "-seed", "0x5eed", "-no-cache"}

	do := func(extra ...string) (stdout, stderr bytes.Buffer, code int) {
		code = run(append(append([]string{}, base...), extra...), &stdout, &stderr)
		return
	}

	plain, perr, pcode := do()
	if pcode != 0 {
		t.Fatalf("plain run exit %d, stderr:\n%s", pcode, perr.String())
	}
	if plain.Len() == 0 {
		t.Fatal("plain run produced no output")
	}

	pbPath := filepath.Join(dir, "prof.pb.gz")
	outPB, errPB, codePB := do("-eprof", pbPath)
	if codePB != 0 {
		t.Fatalf("pprof-profiled run exit %d, stderr:\n%s", codePB, errPB.String())
	}

	foldedPath := filepath.Join(dir, "prof.folded")
	report := filepath.Join(dir, "report.json")
	outF, errF, codeF := do("-eprof", foldedPath, "-report", report)
	if codeF != 0 {
		t.Fatalf("folded-profiled run exit %d, stderr:\n%s", codeF, errF.String())
	}

	// (1) stdout byte-identity with profiling on — acceptance (a).
	if !bytes.Equal(plain.Bytes(), outPB.Bytes()) {
		t.Error("-eprof (pprof) changed stdout")
	}
	if !bytes.Equal(plain.Bytes(), outF.Bytes()) {
		t.Error("-eprof (folded) changed stdout")
	}

	// (2) the protobuf decodes in-process with both sample types and
	// nonzero samples.
	f, err := os.Open(pbPath)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := eprof.Parse(f)
	f.Close()
	if err != nil {
		t.Fatalf("pprof export does not decode: %v", err)
	}
	if len(parsed.SampleTypes) != 2 || parsed.SampleTypes[0] != eprof.SampleTypeEnergy ||
		parsed.SampleTypes[1] != eprof.SampleTypeVTime {
		t.Fatalf("sample types = %v", parsed.SampleTypes)
	}
	if len(parsed.Samples) == 0 {
		t.Fatal("pprof export has zero samples")
	}
	var pbEnergy, pbVTime int64
	for _, s := range parsed.Samples {
		if len(s.Values) != 2 {
			t.Fatalf("sample has %d values, want 2", len(s.Values))
		}
		pbEnergy += s.Values[0]
		pbVTime += s.Values[1]
	}
	if pbEnergy <= 0 || pbVTime <= 0 {
		t.Fatalf("profiled totals energy=%d nJ vtime=%d ns, want both > 0", pbEnergy, pbVTime)
	}

	// (3) folded column sum == manifest total energy, exactly.
	var m obs.Manifest
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Profile == nil {
		t.Fatal("manifest has no profile summary")
	}
	folded, err := os.ReadFile(foldedPath)
	if err != nil {
		t.Fatal(err)
	}
	var foldedSum int64
	lines := strings.Split(strings.TrimSpace(string(folded)), "\n")
	for _, ln := range lines {
		v, err := strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("folded line %q: %v", ln, err)
		}
		foldedSum += v
	}
	if len(lines) != m.Profile.Stacks {
		t.Errorf("folded has %d stacks, manifest says %d", len(lines), m.Profile.Stacks)
	}
	if foldedSum != m.Profile.EnergyNJ {
		t.Errorf("folded column sum %d nJ != manifest energy %d nJ", foldedSum, m.Profile.EnergyNJ)
	}
	// Identical tuples profile identically: the pprof run's totals must
	// match the folded run's.
	if pbEnergy != m.Profile.EnergyNJ {
		t.Errorf("pprof energy sum %d nJ != manifest energy %d nJ", pbEnergy, m.Profile.EnergyNJ)
	}
	if pbVTime != m.Profile.VTimeNS {
		t.Errorf("pprof vtime sum %d ns != manifest vtime %d ns", pbVTime, m.Profile.VTimeNS)
	}
}

// TestEprofWriteFailureExitsNonzero pins the -eprof error handling
// (same contract as -memprofile): an uncreatable path fails fast with
// exit 2 before any simulation runs.
func TestEprofWriteFailureExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	bad := filepath.Join(t.TempDir(), "no-such-dir", "prof.pb.gz")
	code := run([]string{"-run", "fig5", "-scale", "0.05", "-eprof", bad}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("eprof")) {
		t.Fatalf("missing eprof diagnostic:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed run wrote %d bytes to stdout", stdout.Len())
	}
}

// TestEprofBypassesCache: like -trace-vt, -eprof forces live runs even
// with a cache directory (a replayed result has no integrator segments
// to attribute) and says so on stderr.
func TestEprofBypassesCache(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "fig5", "-scale", "0.05",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-eprof", filepath.Join(dir, "prof.folded")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("result cache bypassed")) {
		t.Errorf("missing cache-bypass note, stderr:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "prof.folded"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("folded profile is empty")
	}
	if !bytes.Contains(raw, []byte("fig5#0;")) {
		t.Fatalf("folded stacks missing fig5#0 root:\n%.300s", raw)
	}
}

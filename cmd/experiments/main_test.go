package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hswsim/internal/obs"
)

// TestReportLeavesOutputByteIdentical is the golden gate for the
// observability layer: enabling -report (and the result cache, and
// neither) must leave the rendered experiment bytes on stdout exactly
// identical. It also checks the report itself — the manifest of a clean
// run must show the simulator actually doing work (events, forks,
// scheduler slots, cache traffic) and must show zero silent-failure
// events (cache put failures, invalid RAPL windows, empty statistics
// inputs).
func TestReportLeavesOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite three times at scale 0.25")
	}
	cacheDir := t.TempDir()
	reportDir := t.TempDir()
	base := []string{"-run", "all", "-scale", "0.25", "-seed", "0x5eed"}

	do := func(extra ...string) (stdout, stderr bytes.Buffer, code int) {
		code = run(append(append([]string{}, base...), extra...), &stdout, &stderr)
		return
	}

	// Run 1: cold cache, no report — populates cacheDir, counts misses.
	out1, err1, code1 := do("-cache-dir", cacheDir)
	if code1 != 0 {
		t.Fatalf("cold run exit %d, stderr:\n%s", code1, err1.String())
	}
	if out1.Len() == 0 {
		t.Fatal("cold run produced no output")
	}

	// Run 2: warm cache + report — replays cached bytes, counts hits.
	warmReport := filepath.Join(reportDir, "warm.json")
	out2, err2, code2 := do("-cache-dir", cacheDir, "-report", warmReport)
	if code2 != 0 {
		t.Fatalf("warm run exit %d, stderr:\n%s", code2, err2.String())
	}

	// Run 3: live (no cache) + report + prometheus export.
	liveReport := filepath.Join(reportDir, "live.json")
	promOut := filepath.Join(reportDir, "live.prom")
	out3, err3, code3 := do("-no-cache", "-report", liveReport, "-report-prom", promOut)
	if code3 != 0 {
		t.Fatalf("live run exit %d, stderr:\n%s", code3, err3.String())
	}

	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("cached output differs from cold output (%d vs %d bytes)", out2.Len(), out1.Len())
	}
	if !bytes.Equal(out1.Bytes(), out3.Bytes()) {
		t.Errorf("-report run output differs from plain run (%d vs %d bytes)", out3.Len(), out1.Len())
	}

	var m obs.Manifest
	raw, err := os.ReadFile(liveReport)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	if m.Tool != "experiments" || len(m.Experiments) == 0 {
		t.Fatalf("manifest missing run info: tool=%q experiments=%d", m.Tool, len(m.Experiments))
	}
	for _, e := range m.Experiments {
		if e.Err != "" {
			t.Errorf("experiment %s failed: %s", e.ID, e.Err)
		}
		if e.Cached {
			t.Errorf("experiment %s cached in a -no-cache run", e.ID)
		}
	}

	// The simulator must visibly have done work. Counters are cumulative
	// for the process, so this manifest covers all three runs above.
	mustPositive := []string{
		"sim_events_dispatched_total",
		"sim_forks_total",
		"sched_slot_acquires_total",
		"exp_sweep_points_total",
		"expcache_misses_total", // run 1 started cold
		"expcache_hits_total",   // run 2 replayed run 1's entries
		"power_segments_replayed_total",
	}
	for _, name := range mustPositive {
		met, ok := m.Metric(name)
		if !ok {
			t.Errorf("manifest missing metric %s", name)
			continue
		}
		if met.Value <= 0 {
			t.Errorf("%s = %d, want > 0", name, met.Value)
		}
	}
	// ... and the silent-failure counters of the bug fixes must all be
	// zero on a clean run.
	mustZero := []string{
		"expcache_put_failures_total",
		"rapl_window_errors_total",
		"stats_empty_input_total",
	}
	for _, name := range mustZero {
		met, ok := m.Metric(name)
		if !ok {
			t.Errorf("manifest missing metric %s", name)
			continue
		}
		if met.Value != 0 {
			t.Errorf("%s = %d, want 0 on a clean run", name, met.Value)
		}
	}

	prom, err := os.ReadFile(promOut)
	if err != nil {
		t.Fatalf("read prometheus export: %v", err)
	}
	for _, want := range []string{
		"# TYPE sim_events_dispatched_total counter",
		"sim_events_dispatched_total ",
		"sched_slot_wait_ns_bucket{le=\"+Inf\"}",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("prometheus export missing %q", want)
		}
	}
}

// TestUsageErrors pins the argument-validation exit code.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown id: exit %d, want 2", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("unknown experiment id")) {
		t.Fatalf("missing unknown-id diagnostic, got:\n%s", stderr.String())
	}
}

// TestHelpExitsZero is the regression test for the -h/-help path: with
// flag.ContinueOnError, flag.ErrHelp used to fall through the generic
// parse-error branch and exit 2 — breaking `experiments -h && ...`
// scripting and CI probes. Usage on request is a success.
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"-h", "-help", "--help"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{arg}, &stdout, &stderr); code != 0 {
			t.Errorf("run(%q) = %d, want 0", arg, code)
		}
		// The usage text itself still lands on stderr...
		if !bytes.Contains(stderr.Bytes(), []byte("-run")) {
			t.Errorf("run(%q) printed no usage text", arg)
		}
		// ...and no experiment output leaks to stdout.
		if stdout.Len() != 0 {
			t.Errorf("run(%q) wrote %d bytes to stdout", arg, stdout.Len())
		}
	}
	// A genuine flag error still exits 2.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("run(bad flag) = %d, want 2", code)
	}
}

// Command ftalat measures p-state transition latencies against the
// simulated PCU, reproducing the paper's modified FTaLaT methodology
// (Section VI-A / Figure 3): frequency switches between 1.2 and
// 1.3 GHz, verified against actual cycle counts, in four request-timing
// classes. With -parallel it runs the Figure 4 two-core experiment
// instead, showing same-socket grant synchronization and cross-socket
// independence.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale (1.0 = 1000 samples per class)")
	parallel := flag.Bool("parallel", false, "run the two-core grant-synchronization experiment (Figure 4)")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	flag.Parse()

	o := exp.Options{Scale: *scale, Seed: *seed}
	if *parallel {
		r, err := exp.Fig4(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		return
	}
	r, err := exp.Fig3(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(r.Render())
}

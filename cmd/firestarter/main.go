// Command firestarter runs the processor stress workloads of
// Sections V-B and VIII on the simulated node: FIRESTARTER (default),
// LINPACK or mprime, with control over the frequency setting,
// Hyper-Threading and the energy performance bias — and regenerates
// Tables IV and V with -table4 / -table5.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/core"
	"hswsim/internal/exp"
	"hswsim/internal/pcu"
	"hswsim/internal/perfctr"
	"hswsim/internal/sim"
	"hswsim/internal/uarch"
	"hswsim/internal/workload"
)

func main() {
	table4 := flag.Bool("table4", false, "regenerate Table IV (FIRESTARTER frequency sweep, HT on)")
	table5 := flag.Bool("table5", false, "regenerate Table V (stress workload comparison, HT off)")
	kernel := flag.String("workload", "firestarter", "workload: firestarter, linpack or mprime")
	freq := flag.Int("freq", 0, "core frequency setting in MHz (0 = turbo)")
	ht := flag.Bool("ht", true, "enable Hyper-Threading")
	epb := flag.String("epb", "balanced", "energy performance bias: performance, balanced or powersave")
	seconds := flag.Float64("seconds", 10, "virtual seconds to run")
	scale := flag.Float64("scale", 1.0, "effort scale for -table4/-table5")
	flag.Parse()

	o := exp.Options{Scale: *scale, Seed: 0x5eed}
	if *table4 {
		_, t, err := exp.Table4(o)
		exitOn(err)
		fmt.Print(t.String())
		return
	}
	if *table5 {
		_, t, err := exp.Table5(o)
		exitOn(err)
		fmt.Print(t.String())
		return
	}

	var k workload.Kernel
	switch *kernel {
	case "firestarter":
		k = workload.Firestarter()
	case "linpack":
		k = workload.Linpack()
	case "mprime":
		k = workload.Mprime()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kernel)
		os.Exit(2)
	}
	var bias pcu.EPB
	switch *epb {
	case "performance":
		bias = pcu.EPBPerformance
	case "balanced":
		bias = pcu.EPBBalanced
	case "powersave":
		bias = pcu.EPBPowerSave
	default:
		fmt.Fprintf(os.Stderr, "unknown epb %q\n", *epb)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.HyperThreading = *ht
	sys, err := core.NewSystem(cfg)
	exitOn(err)
	sys.SetEPB(bias)
	threads := 1
	if *ht {
		threads = 2
	}
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		exitOn(sys.AssignKernel(cpu, k, threads))
	}
	set := sys.Spec().TurboSettingMHz()
	if *freq > 0 {
		set = uarch.MHz(*freq)
	}
	sys.SetPStateAll(set)

	settle := 2 * sim.Second
	run := sim.Time(*seconds * float64(sim.Second))
	sys.Run(settle)
	fmt.Printf("%s on %s\n", k.Name(), sys.Spec().Model)
	fmt.Printf("setting %v, EPB %v, HT %v, %v of measurement\n\n", set, bias, *ht, run)

	start := sys.Now()
	var ivs [2]perfctr.Interval
	ua0 := sys.Socket(0).UncoreSnapshot()
	ua1 := sys.Socket(1).UncoreSnapshot()
	a0 := sys.Core(0).Snapshot()
	a1 := sys.Core(sys.Spec().Cores).Snapshot()
	sys.Run(run)
	b0 := sys.Core(0).Snapshot()
	b1 := sys.Core(sys.Spec().Cores).Snapshot()
	ub0 := sys.Socket(0).UncoreSnapshot()
	ub1 := sys.Socket(1).UncoreSnapshot()
	ivs[0] = perfctr.Delta(a0, b0)
	ivs[1] = perfctr.Delta(a1, b1)

	for s := 0; s < 2; s++ {
		unc := perfctr.UncoreFreqGHz([2]perfctr.UncoreSnapshot{ua0, ua1}[s], [2]perfctr.UncoreSnapshot{ub0, ub1}[s])
		fmt.Printf("processor %d: core %.2f GHz, uncore %.2f GHz, %.2f GIPS/thread, pkg %.1f W\n",
			s, ivs[s].FreqGHz(), unc, ivs[s].GIPS()/float64(threads), sys.Socket(s).LastPkgPowerW())
	}
	fmt.Printf("node AC (meter average): %.1f W\n", sys.Meter().Average(start, sys.Now()))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command uncorefreq measures the transparent uncore frequency map of
// Table III: a while(1) thread on processor 0, a core-frequency sweep,
// and UNCORE_CLOCK:UBOXFIX readings on both sockets — optionally with
// the energy performance bias set to performance to expose the
// asterisked 3.0 GHz rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/core"
	"hswsim/internal/exp"
	"hswsim/internal/pcu"
	"hswsim/internal/perfctr"
	"hswsim/internal/sim"
	"hswsim/internal/uarch"
	"hswsim/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "effort scale (1.0 = 10 s per setting)")
	epbPerf := flag.Bool("epb-performance", false, "set EPB to performance (asterisked Table III rows)")
	flag.Parse()

	if !*epbPerf {
		_, t, err := exp.Table3(exp.Options{Scale: *scale, Seed: 0x5eed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		return
	}

	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.SetEPB(pcu.EPBPerformance)
	if err := sys.AssignKernel(0, workload.BusyWait(), 1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	measure := sim.Time(*scale * float64(10*sim.Second))
	if measure < 50*sim.Millisecond {
		measure = 50 * sim.Millisecond
	}
	spec := sys.Spec()
	fmt.Println("EPB = performance (note the pinned 3.0 GHz uncore at base/turbo settings):")
	fmt.Printf("%-8s %-8s %-8s\n", "setting", "active", "passive")
	for _, set := range []uarch.MHz{spec.TurboSettingMHz(), 2500, 2300, 2000, 1200} {
		sys.SetPStateAll(set)
		sys.Run(5 * sim.Millisecond)
		a0 := sys.Socket(0).UncoreSnapshot()
		a1 := sys.Socket(1).UncoreSnapshot()
		sys.Run(measure)
		b0 := sys.Socket(0).UncoreSnapshot()
		b1 := sys.Socket(1).UncoreSnapshot()
		label := fmt.Sprintf("%.1f", set.GHz())
		if set > spec.BaseMHz {
			label = "Turbo"
		}
		fmt.Printf("%-8s %-8.2f %-8.2f\n", label,
			perfctr.UncoreFreqGHz(a0, b0), perfctr.UncoreFreqGHz(a1, b1))
	}
}

// Command cstatelat measures c-state wake-up latencies (Figures 5/6):
// waker/wakee pairs in the local, remote-active and remote-idle
// (package c-state) scenarios across the p-state range, on Haswell-EP
// with the Sandy Bridge-EP baseline for comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/cstate"
	"hswsim/internal/exp"
)

func main() {
	state := flag.String("state", "c6", "idle state to measure: c1, c3 or c6")
	scale := flag.Float64("scale", 1.0, "effort scale")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	flag.Parse()

	var st cstate.State
	switch *state {
	case "c1":
		st = cstate.C1
	case "c3":
		st = cstate.C3
	case "c6":
		st = cstate.C6
	default:
		fmt.Fprintf(os.Stderr, "unknown state %q (want c1, c3 or c6)\n", *state)
		os.Exit(2)
	}
	r, err := exp.CStateLatencies(st, exp.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(r.Render())
}

// Command membench runs the L3/DRAM read bandwidth benchmarks behind
// Figures 7 and 8: 17 MB (L3) and 350 MB (DRAM) consecutive reads with
// hardware prefetchers enabled, swept over frequency, concurrency and
// processor generation.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/exp"
)

func main() {
	fig7 := flag.Bool("fig7", false, "cross-generation frequency scaling at max concurrency (Figure 7)")
	fig8 := flag.Bool("fig8", false, "concurrency x frequency surface on Haswell-EP (Figure 8)")
	scale := flag.Float64("scale", 1.0, "effort scale")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	csv := flag.Bool("csv", false, "emit raw points as CSV instead of rendered figures")
	flag.Parse()

	if !*fig7 && !*fig8 {
		*fig7, *fig8 = true, true
	}
	o := exp.Options{Scale: *scale, Seed: *seed}
	if *fig7 {
		r, err := exp.Fig7(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println("arch,level,freq_ghz,relative,abs_gbs")
			for _, p := range r.Points {
				fmt.Printf("%s,%s,%.3f,%.4f,%.2f\n", p.Arch, p.Level, p.FreqGHz, p.Relative, p.AbsGBs)
			}
		} else {
			fmt.Print(r.Render())
		}
	}
	if *fig8 {
		r, err := exp.Fig8(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println("level,cores,threads,freq_ghz,gbs")
			for _, p := range r.Points {
				fmt.Printf("%s,%d,%d,%.3f,%.2f\n", p.Level, p.Cores, p.Threads, p.FreqGHz, p.GBs)
			}
		} else {
			fmt.Print(r.Render())
		}
	}
}

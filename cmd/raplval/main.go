// Command raplval validates the RAPL energy interface against the
// simulated LMG450 AC reference meter (Figure 2): microbenchmarks in
// varied threading configurations, 4-second power averages, and a
// linear (Sandy Bridge-EP, modeled RAPL) or quadratic (Haswell-EP,
// measured RAPL) fit with R-squared and per-workload bias.
package main

import (
	"flag"
	"fmt"
	"os"

	"hswsim/internal/core"
	"hswsim/internal/exp"
	"hswsim/internal/msr"
	"hswsim/internal/rapl"
	"hswsim/internal/sim"
	"hswsim/internal/uarch"
	"hswsim/internal/workload"
)

func main() {
	arch := flag.String("arch", "hsw", "platform: hsw (Haswell-EP) or snb (Sandy Bridge-EP)")
	scale := flag.Float64("scale", 1.0, "effort scale (1.0 = 4 s averages)")
	seed := flag.Uint64("seed", 0x5eed, "simulation seed")
	csv := flag.Bool("csv", false, "emit the raw points as CSV")
	wrongUnit := flag.Bool("wrongunit", false, "demonstrate the DRAM mode-0 unit confusion (Section IV)")
	flag.Parse()

	if *wrongUnit {
		demoWrongUnit()
		return
	}

	var gen uarch.Generation
	switch *arch {
	case "hsw":
		gen = uarch.HaswellEP
	case "snb":
		gen = uarch.SandyBridgeEP
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q (want hsw or snb)\n", *arch)
		os.Exit(2)
	}
	r, err := exp.Fig2(gen, exp.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Println("workload,cores,ac_w,rapl_w")
		for _, p := range r.Points {
			fmt.Printf("%s,%d,%.2f,%.2f\n", p.Workload, p.Cores, p.ACW, p.RAPLW)
		}
		return
	}
	fmt.Print(r.Render())
}

// demoWrongUnit shows what happens when a tool computes DRAM power with
// the MSR_RAPL_POWER_UNIT energy unit instead of the fixed 15.3 uJ one:
// "unreasonably high values for DRAM power consumption" (Section IV).
func demoWrongUnit() {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for cpu := 0; cpu < 12; cpu++ {
		if err := sys.AssignKernel(cpu, workload.MemStream(), 2); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sys.SetPStateAll(2500)
	sys.Run(500 * sim.Millisecond)
	a, err := sys.ReadRAPL(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys.Run(sim.Second)
	b, err := sys.ReadRAPL(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	unitReg, err := sys.MSR().Read(0, msr.MSR_RAPL_POWER_UNIT)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	right := rapl.PowerFromCounter(a.DRAM, b.DRAM, msr.DRAMEnergyUnitJoulesHaswellEP, sim.Second)
	wrong := rapl.PowerFromCounter(a.DRAM, b.DRAM, msr.EnergyUnitJoules(unitReg), sim.Second)
	fmt.Println("DRAM RAPL under a 12-core DRAM stream:")
	fmt.Printf("  correct 15.3 uJ unit (mode 1): %6.1f W\n", right)
	fmt.Printf("  package unit from MSR 0x606:   %6.1f W  <- unreasonably high (Section IV)\n", wrong)
}

// Command hswsim is the general-purpose platform runner: pick a
// workload, thread placement, frequency setting and bias, run for a
// stretch of virtual time and report what the hardware did — the
// "drive it yourself" front end to the simulator.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hswsim/internal/core"
	"hswsim/internal/governor"
	"hswsim/internal/pcu"
	"hswsim/internal/perfctr"
	"hswsim/internal/sim"
	"hswsim/internal/uarch"
	"hswsim/internal/workload"
)

var kernels = map[string]func() workload.Kernel{
	"idle":        func() workload.Kernel { return nil },
	"busywait":    workload.BusyWait,
	"compute":     workload.Compute,
	"sqrt":        workload.Sqrt,
	"memory":      workload.Memory,
	"dgemm":       workload.DGEMM,
	"l3stream":    workload.L3Stream,
	"memstream":   workload.MemStream,
	"firestarter": workload.Firestarter,
	"linpack":     workload.Linpack,
	"mprime":      workload.Mprime,
	"sinus":       func() workload.Kernel { return workload.Sinus(sim.Second) },
}

func main() {
	wl := flag.String("workload", "firestarter", "workload: "+strings.Join(names(), ", "))
	cores := flag.Int("cores", 0, "cores per socket to load (0 = all)")
	threads := flag.Int("threads", 2, "threads per core (1 or 2)")
	freq := flag.Int("freq", 0, "p-state setting in MHz (0 = turbo)")
	epb := flag.String("epb", "balanced", "energy performance bias")
	gov := flag.String("governor", "", "attach a governor: performance, powersave, ondemand, conservative, memory-aware")
	seconds := flag.Float64("seconds", 5, "virtual seconds to run")
	arch := flag.String("arch", "hsw", "platform: hsw, snb or wsm")
	specFile := flag.String("spec", "", "load a custom processor spec (JSON) instead of -arch")
	traceN := flag.Int("trace", 0, "print the last N platform trace events")
	flag.Parse()

	mk, ok := kernels[*wl]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	var cfg core.Config
	switch *arch {
	case "hsw":
		cfg = core.DefaultConfig()
	case "snb":
		cfg = core.SandyBridgeConfig()
	case "wsm":
		cfg = core.WestmereConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if *specFile != "" {
		spec, err := uarch.LoadSpec(*specFile)
		exitOn(err)
		cfg.Spec = spec
	}
	sys, err := core.NewSystem(cfg)
	exitOn(err)
	if *traceN > 0 {
		sys.EnableTrace(64 * 1024)
	}

	switch *epb {
	case "performance":
		sys.SetEPB(pcu.EPBPerformance)
	case "balanced":
		sys.SetEPB(pcu.EPBBalanced)
	case "powersave":
		sys.SetEPB(pcu.EPBPowerSave)
	default:
		fmt.Fprintf(os.Stderr, "unknown epb %q\n", *epb)
		os.Exit(2)
	}

	perSocket := *cores
	if perSocket <= 0 || perSocket > cfg.Spec.Cores {
		perSocket = cfg.Spec.Cores
	}
	k := mk()
	var loaded []int
	for s := 0; s < sys.Sockets(); s++ {
		for c := 0; c < perSocket; c++ {
			cpu := s*cfg.Spec.Cores + c
			exitOn(sys.AssignKernel(cpu, k, *threads))
			loaded = append(loaded, cpu)
		}
	}
	set := cfg.Spec.TurboSettingMHz()
	if *freq > 0 {
		set = uarch.MHz(*freq)
	}
	sys.SetPStateAll(set)

	var runner *governor.Runner
	if *gov != "" {
		var g governor.Governor
		switch *gov {
		case "performance":
			g = governor.Performance{}
		case "powersave":
			g = governor.Powersave{}
		case "ondemand":
			g = governor.OnDemand{}
		case "conservative":
			g = governor.Conservative{}
		case "memory-aware":
			g = governor.MemoryAware{}
		default:
			fmt.Fprintf(os.Stderr, "unknown governor %q\n", *gov)
			os.Exit(2)
		}
		runner = governor.NewRunner(sys, g, loaded, 10*sim.Millisecond)
		runner.Start()
	}

	settle := sim.Second
	run := sim.Time(*seconds * float64(sim.Second))
	sys.Run(settle)
	start := sys.Now()
	snaps := map[int]perfctr.Snapshot{}
	for _, cpu := range loaded {
		snaps[cpu] = sys.Core(cpu).Snapshot()
	}
	var raps []core.RAPLReading
	for s := 0; s < sys.Sockets(); s++ {
		r, err := sys.ReadRAPL(s)
		exitOn(err)
		raps = append(raps, r)
	}
	sys.Run(run)

	fmt.Printf("%s: %q on %d cores/socket x %d threads, setting %v, EPB %s\n",
		cfg.Spec.Model, workload.NameOf(k), perSocket, *threads, set, sys.EPB())
	totGIPS := 0.0
	for s := 0; s < sys.Sockets(); s++ {
		cpu := s * cfg.Spec.Cores
		if _, ok := snaps[cpu]; !ok {
			continue
		}
		iv := perfctr.Delta(snaps[cpu], sys.Core(cpu).Snapshot())
		after, err := sys.ReadRAPL(s)
		exitOn(err)
		pkgW, dramW, err := sys.RAPLPowerW(raps[s], after)
		exitOn(err)
		fmt.Printf("  socket %d: core %.2f GHz, IPC %.2f, pkg %.1f W, DRAM %.1f W, %v\n",
			s, iv.FreqGHz(), iv.IPC(), pkgW, dramW, sys.Socket(s).PkgCState())
	}
	for _, cpu := range loaded {
		iv := perfctr.Delta(snaps[cpu], sys.Core(cpu).Snapshot())
		totGIPS += iv.GIPS()
	}
	fmt.Printf("  total: %.1f GIPS, node AC %.1f W\n", totGIPS, sys.Meter().Average(start, sys.Now()))
	if runner != nil {
		fmt.Printf("  governor: %d transitions issued\n", runner.Transitions)
		runner.Stop()
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d platform events:\n%s", *traceN, sys.Trace().Render(*traceN))
	}
}

func names() []string {
	var out []string
	for k := range kernels {
		out = append(out, k)
	}
	// deterministic order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

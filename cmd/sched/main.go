// Command sched runs task batches through the scheduler layer under an
// energy policy — the race-to-idle versus pace comparison from the
// command line.
//
//	sched -tasks 16 -ginst 1.5 -every 20ms -policy race
//	sched -tasks 16 -ginst 1.5 -every 20ms -policy pace -pace-mhz 1500
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hswsim/internal/core"
	"hswsim/internal/sched"
	"hswsim/internal/sim"
	"hswsim/internal/uarch"
	"hswsim/internal/workload"
)

func main() {
	nTasks := flag.Int("tasks", 16, "number of tasks")
	ginst := flag.Float64("ginst", 1.5, "instructions per task (G)")
	every := flag.Duration("every", 20*time.Millisecond, "task arrival period (virtual)")
	policy := flag.String("policy", "race", "policy: race or pace")
	paceMHz := flag.Int("pace-mhz", 1500, "p-state for the pace policy")
	cores := flag.Int("cores", 4, "CPUs to schedule over")
	kernel := flag.String("workload", "compute", "task kernel: compute, dgemm, memstream, cg, fft")
	horizon := flag.Float64("seconds", 5, "virtual seconds to run")
	flag.Parse()

	kernels := map[string]func() workload.Kernel{
		"compute":   workload.Compute,
		"dgemm":     workload.DGEMM,
		"memstream": workload.MemStream,
		"cg":        workload.CG,
		"fft":       workload.FFT,
	}
	mk, ok := kernels[*kernel]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kernel)
		os.Exit(2)
	}
	var pol sched.Policy
	switch *policy {
	case "race":
		pol = sched.RaceToIdle()
	case "pace":
		pol = sched.Pace(uarch.MHz(*paceMHz))
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cpus := make([]int, *cores)
	for i := range cpus {
		cpus[i] = i
	}
	s := sched.New(sys, cpus, pol)
	for i := 0; i < *nTasks; i++ {
		s.Submit(&sched.Task{
			ID: i, Arrival: sim.Time(i) * sim.FromDuration(*every),
			Kernel: mk(), Threads: 2, Instructions: *ginst * 1e9,
		})
	}
	a, err := sys.ReadRAPL(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dur := sim.Time(*horizon * float64(sim.Second))
	sys.Run(dur)
	b, err := sys.ReadRAPL(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if s.Outstanding() != 0 {
		fmt.Fprintf(os.Stderr, "%d tasks unfinished after %v — raise -seconds\n", s.Outstanding(), dur)
		os.Exit(1)
	}
	res := s.Results()
	pkgW, dramW, err := sys.RAPLPowerW(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var waitSum, svcSum sim.Time
	for _, r := range res {
		waitSum += r.WaitTime()
		svcSum += r.ServiceTime()
	}
	n := sim.Time(len(res))
	fmt.Printf("%s: %d x %.1f Ginst %q tasks on %d cpus\n", pol.Name, *nTasks, *ginst, *kernel, *cores)
	fmt.Printf("  makespan %v, mean wait %v, mean service %v\n",
		res[len(res)-1].Finish, waitSum/n, svcSum/n)
	fmt.Printf("  socket energy %.1f J (%.1f W avg over %v)\n",
		(pkgW+dramW)*dur.Seconds(), pkgW+dramW, dur)
	fmt.Printf("  core 0 residency: %s\n", sys.CoreResidency(0))
}

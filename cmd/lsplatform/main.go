// Command lsplatform prints the static platform description: the SKU
// summary, the die/ring topology of Figure 1, the frequency ladders,
// and the firmware ACPI tables with their measured-reality annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hswsim/internal/acpi"
	"hswsim/internal/report"
	"hswsim/internal/ring"
	"hswsim/internal/uarch"
)

func main() {
	model := flag.String("sku", "e5-2680v3", "SKU: e5-2630v3, e5-2680v3, e5-2699v3, e5-2670snb, x5670wsm")
	specFile := flag.String("spec", "", "load a custom processor spec (JSON) instead of -sku")
	dump := flag.String("dump", "", "write the selected spec as JSON to this path and exit")
	flag.Parse()

	var spec *uarch.Spec
	switch *model {
	case "e5-2630v3":
		spec = uarch.E52630v3()
	case "e5-2680v3":
		spec = uarch.E52680v3()
	case "e5-2699v3":
		spec = uarch.E52699v3()
	case "e5-2670snb":
		spec = uarch.E52670SNB()
	case "x5670wsm":
		spec = uarch.X5670WSM()
	default:
		fmt.Fprintf(os.Stderr, "unknown SKU %q\n", *model)
		os.Exit(2)
	}
	if *specFile != "" {
		loaded, err := uarch.LoadSpec(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec = loaded
	}
	if *dump != "" {
		if err := uarch.SaveSpec(*dump, spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dump)
		return
	}

	fmt.Printf("%s (%v)\n", spec.Model, spec.Generation)
	info := report.NewTable("", "Property", "Value")
	info.AddRow("Cores / threads", report.F("%d / %d", spec.Cores, spec.Cores*spec.ThreadsPerCore))
	info.AddRow("P-states", report.F("%v - %v (step %d MHz)", spec.MinMHz, spec.BaseMHz, spec.PStateStep))
	info.AddRow("Max turbo", spec.MaxTurboMHz().String())
	if spec.AVXBaseMHz != 0 {
		info.AddRow("AVX base / all-core AVX turbo",
			report.F("%v / %v", spec.AVXBaseMHz, spec.TurboLimit(spec.Cores, true)))
	}
	info.AddRow("Uncore", report.F("%v - %v, %v", spec.UncoreMinMHz, spec.UncoreMaxMHz, spec.UncorePolicy))
	info.AddRow("TDP", report.F("%.0f W", spec.Power.TDP))
	info.AddRow("L3", report.F("%.1f MiB", float64(spec.L3Bytes())/(1<<20)))
	info.AddRow("Memory", spec.TableI.SupportedMemory)
	info.AddRow("RAPL", spec.RAPLMode.String())
	fmt.Print(info.String())

	if topo, err := ring.ForDie(spec.DiesCores); err == nil {
		fmt.Printf("\nDie topology (%d-core die):\n", topo.DieCores)
		for _, p := range topo.Partitions {
			cores := make([]string, len(p.CoreIDs))
			for i, c := range p.CoreIDs {
				cores[i] = fmt.Sprintf("%d", c)
			}
			imc := ""
			if p.IMC {
				imc = fmt.Sprintf(" + IMC (%d DDR channels)", p.Channels)
			}
			fmt.Printf("  ring %d: cores [%s]%s\n", p.Index, strings.Join(cores, " "), imc)
		}
		if len(topo.Partitions) > 1 {
			fmt.Printf("  partitions joined by buffered queues (%.0f uncore cycles)\n",
				topo.QueueLatencyUncoreCycles)
		}
	}

	fmt.Println()
	fmt.Print(acpi.Render(spec))
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHelpExitsZero is the regression test for the flag.ErrHelp path:
// asking for usage is a successful interaction, not a flag error
// (see the matching test on cmd/experiments).
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"-h", "-help", "--help"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{arg}, &stdout, &stderr); code != 0 {
			t.Errorf("run(%q) = %d, want 0", arg, code)
		}
		if !strings.Contains(stderr.String(), "-addr") {
			t.Errorf("run(%q) printed no usage text", arg)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("run(bad flag) = %d, want 2", code)
	}
}

func TestCheckManifest(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	clean := write("clean.json", `{
		"tool": "hswsimd", "experiments": [], "failed": 0, "wall_ms": 42,
		"metrics": [
			{"name":"server_requests_total","kind":"counter","labels":{"endpoint":"run"},"value":12},
			{"name":"server_failures_total","kind":"counter","value":0},
			{"name":"expcache_put_failures_total","kind":"counter","value":0},
			{"name":"rapl_window_errors_total","kind":"counter","value":0}
		]}`)
	dirty := write("dirty.json", `{
		"tool": "hswsimd", "experiments": [], "failed": 0, "wall_ms": 42,
		"metrics": [
			{"name":"server_requests_total","kind":"counter","labels":{"endpoint":"run"},"value":12},
			{"name":"server_failures_total","kind":"counter","value":3},
			{"name":"expcache_put_failures_total","kind":"counter","value":0},
			{"name":"rapl_window_errors_total","kind":"counter","value":0}
		]}`)
	wrongTool := write("wrong.json", `{"tool":"experiments","experiments":[],"failed":0,"metrics":[]}`)
	idle := write("idle.json", `{
		"tool": "hswsimd", "experiments": [], "failed": 0,
		"metrics": [
			{"name":"server_failures_total","kind":"counter","value":0},
			{"name":"expcache_put_failures_total","kind":"counter","value":0},
			{"name":"rapl_window_errors_total","kind":"counter","value":0}
		]}`)

	cases := []struct {
		name, path string
		want       int
	}{
		{"clean", clean, 0},
		{"failure counter nonzero", dirty, 1},
		{"wrong tool", wrongTool, 1},
		{"no requests served", idle, 1},
		{"missing file", filepath.Join(dir, "nope.json"), 1},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-check-manifest", tc.path}, &stdout, &stderr); code != tc.want {
			t.Errorf("%s: exit %d (stderr %q), want %d", tc.name, code, stderr.String(), tc.want)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hswsim/internal/obs"
)

// runCheckManifest is the -check-manifest validator: it reads a drain
// manifest and asserts the serving period was clean — the tool
// identity matches, requests were actually served, and every failure
// counter is zero. The CI serve-smoke gate runs it on the manifest a
// SIGTERMed daemon flushed, so "drained cleanly" is checked from the
// artifact, not from the exit code alone.
func runCheckManifest(path string, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "check-manifest: "+format+"\n", args...)
		return 1
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fail("%v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fail("not a manifest: %v", err)
	}
	if m.Tool != "hswsimd" {
		return fail("tool = %q, want hswsimd", m.Tool)
	}
	if m.Failed != 0 {
		return fail("manifest records %d failed runs", m.Failed)
	}
	if len(m.Metrics) == 0 {
		return fail("manifest carries no metrics snapshot")
	}
	served := int64(0)
	for _, mm := range m.Metrics {
		if mm.Name == "server_requests_total" {
			served += mm.Value
		}
	}
	if served == 0 {
		return fail("server_requests_total is zero: the manifest is not from a serving period")
	}
	for _, name := range []string{
		"server_failures_total",
		"expcache_put_failures_total",
		"rapl_window_errors_total",
	} {
		mm, ok := m.Metric(name)
		if !ok {
			return fail("failure counter %s missing from the snapshot", name)
		}
		if mm.Value != 0 {
			return fail("failure counter %s = %d, want 0", name, mm.Value)
		}
	}
	fmt.Fprintf(stderr, "check-manifest: clean (%d requests served over %d ms, zero failure counters)\n", served, m.WallMS)
	return 0
}

// Command hswsimd is the long-lived simulation server: the experiment
// suite behind an HTTP+JSON API, built for heavy concurrent traffic.
//
// Usage:
//
//	hswsimd                        # serve on 127.0.0.1:7077
//	hswsimd -addr :8080 -queue-depth 64 -report run.json
//	hswsimd -smoke http://127.0.0.1:7077      # client self-test
//	hswsimd -check-manifest run.json          # validate a drain manifest
//
// Endpoints:
//
//	POST /v1/run          {"id":"tab3","scale":0.25,"seed":24301,"csv":false}
//	                      → the rendered table, byte-identical to
//	                      `experiments -run tab3` for the same tuple.
//	                      ?trace=chrome|timeline streams the run's
//	                      virtual-time span trace instead.
//	GET  /v1/profile      ?id=tab3&type=energy|vtime → a forced-live
//	                      run's virtual-time energy profile as gzipped
//	                      pprof protobuf (go tool pprof / Speedscope).
//	GET  /v1/stream       → sampled metrics time-series as Server-Sent
//	                      Events (Last-Event-ID resumes the stream).
//	GET  /v1/experiments  → the experiment catalog (id + title).
//	GET  /metrics         → Prometheus text from the obs registry.
//	GET  /healthz         → 200 serving / 503 draining.
//
// Identical in-flight requests coalesce onto one simulation; completed
// results are cached in the same on-disk result cache the CLI uses;
// live runs are admitted through a bounded wait queue on the shared
// compute-slot pool, shedding load with 429 past the depth limit.
// Every /v1 response carries an X-Request-ID (client-provided or
// generated), and -access-log writes one structured line per request.
// -debug-addr opens a second listener with net/http/pprof — kept off
// the serving address so production traffic never exposes it.
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight runs
// finish (bounded by -drain-timeout), and the obs manifest flushes to
// -report. docs/SERVER.md is the full API and semantics reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hswsim/internal/expcache"
	"hswsim/internal/server"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the daemon behind a testable surface; flag parsing and all
// output are parameterized so tests can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hswsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7077", "listen address (host:port; port 0 binds a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (automation hook)")
	cacheDir := fs.String("cache-dir", defaultCacheDir(), "result cache directory, shared with the experiments CLI (empty disables caching)")
	noCache := fs.Bool("no-cache", false, "serve without the result cache: every uncoalesced request runs live")
	queueDepth := fs.Int("queue-depth", 0, "max run requests waiting for a compute slot before 429s (0 = 4x slots)")
	maxScale := fs.Float64("max-scale", 1.0, "reject run requests above this effort scale")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "graceful-drain deadline after SIGINT/SIGTERM")
	reportPath := fs.String("report", "", "flush the obs manifest JSON here on shutdown")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	accessLog := fs.String("access-log", "", "append per-request access-log lines to this file (\"-\" = stderr)")
	sampleInterval := fs.Duration("sample-interval", time.Second, "metrics time-series sampling period behind /v1/stream")
	smoke := fs.String("smoke", "", "run the smoke client against a serving hswsimd at this base URL, then exit")
	checkManifest := fs.String("check-manifest", "", "validate a drain manifest (clean run, zero failure counters), then exit")
	if err := fs.Parse(args); err != nil {
		// -h/-help is a successful outcome (the usage text was the
		// request), not a flag error.
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *smoke != "" {
		return runSmoke(*smoke, stderr)
	}
	if *checkManifest != "" {
		return runCheckManifest(*checkManifest, stderr)
	}

	cfg := server.Config{
		QueueDepth:     *queueDepth,
		MaxScale:       *maxScale,
		ManifestPath:   *reportPath,
		SampleInterval: *sampleInterval,
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "hswsimd: access-log: %v\n", err)
			return 1
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if !*noCache && *cacheDir != "" {
		c, err := expcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "warning: result cache disabled: %v\n", err)
		} else {
			cfg.Cache = c
		}
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "hswsimd: listen: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(stderr, "hswsimd: addr-file: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Fprintf(stderr, "hswsimd: listening on %s\n", bound)

	// The Go-runtime pprof handlers live on their own listener: they
	// expose heap contents and can stall the process, so they must
	// never be reachable through the serving address.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "hswsimd: debug listen: %v\n", err)
			ln.Close()
			return 1
		}
		debugSrv = &http.Server{Handler: debugMux()}
		fmt.Fprintf(stderr, "hswsimd: debug (net/http/pprof) on %s\n", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(stderr, "hswsimd: debug serve: %v\n", err)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "hswsimd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	fmt.Fprintf(stderr, "hswsimd: draining (deadline %s)\n", *drainTimeout)
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	// Shutdown stops accepting and waits for in-flight handlers; Drain
	// double-checks the server's own in-flight accounting and flushes
	// the manifest either way.
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "hswsimd: shutdown: %v\n", err)
		code = 1
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "hswsimd: drain: %v\n", err)
		code = 1
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if code == 0 {
		fmt.Fprintln(stderr, "hswsimd: drained cleanly")
	}
	return code
}

// debugMux mounts the net/http/pprof handlers on a fresh mux (the
// package's init registers them only on http.DefaultServeMux, which we
// never serve).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultCacheDir mirrors cmd/experiments: the two tools share cache
// entries for identical tuples.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "hswsim", "experiments")
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// runSmoke is the -smoke client: an end-to-end exercise of a serving
// hswsimd from the outside — health, catalog, a cached request pair, a
// coalesced request batch — asserting the serving counters moved the
// way the semantics promise. The CI serve-smoke gate runs it against a
// freshly started daemon before SIGTERMing it.
func runSmoke(base string, stderr io.Writer) int {
	client := &http.Client{Timeout: 5 * time.Minute}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "smoke: "+format+"\n", args...)
		return 1
	}

	// Health.
	body, code, _, err := get(client, base+"/healthz")
	if err != nil || code != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		return fail("healthz: code %d body %q err %v", code, body, err)
	}

	// Catalog.
	body, code, _, err = get(client, base+"/v1/experiments")
	if err != nil || code != http.StatusOK {
		return fail("experiments: code %d err %v", code, err)
	}
	var list []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return fail("experiments list not JSON: %v", err)
	}
	ids := map[string]bool{}
	for _, e := range list {
		ids[e.ID] = true
	}
	if !ids["tab1"] || !ids["tab3"] {
		return fail("catalog missing expected experiments: %v", ids)
	}

	// Cached pair: the first run is live (or already cached from an
	// earlier run against this cache dir), the second must replay.
	req := `{"id":"tab1","scale":0.05}`
	first, code, _, err := post(client, base+"/v1/run", req)
	if err != nil || code != http.StatusOK {
		return fail("run tab1 (1st): code %d body %q err %v", code, first, err)
	}
	second, code, hdr, err := post(client, base+"/v1/run", req)
	if err != nil || code != http.StatusOK {
		return fail("run tab1 (2nd): code %d err %v", code, err)
	}
	if hdr.Get("X-Hswsim-Cached") != "true" {
		return fail("repeated tab1 request was not a cache hit")
	}
	if !bytes.Equal(first, second) {
		return fail("cached tab1 bytes differ from the live run (%d vs %d B)", len(second), len(first))
	}

	// Coalesced batch: concurrent identical requests for an uncached
	// tuple. Overlap is near-certain (a tab3 run takes far longer than
	// request fan-out), but not guaranteed by construction — retry with
	// a fresh tuple before declaring failure.
	coalesced := false
	for attempt := 0; attempt < 3 && !coalesced; attempt++ {
		before, err := counter(client, base, "server_coalesced_total")
		if err != nil {
			return fail("metrics before coalescing batch: %v", err)
		}
		batchReq := fmt.Sprintf(`{"id":"tab3","scale":0.05,"seed":%d}`, 0x60401+attempt)
		var wg sync.WaitGroup
		bodies := make([][]byte, 8)
		codes := make([]int, 8)
		errs := make([]error, 8)
		for i := range bodies {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				bodies[i], codes[i], _, errs[i] = post(client, base+"/v1/run", batchReq)
			}(i)
		}
		wg.Wait()
		for i := range bodies {
			if errs[i] != nil || codes[i] != http.StatusOK {
				return fail("coalescing batch client %d: code %d err %v", i, codes[i], errs[i])
			}
			if !bytes.Equal(bodies[i], bodies[0]) {
				return fail("coalescing batch client %d: bytes differ within one tuple", i)
			}
		}
		after, err := counter(client, base, "server_coalesced_total")
		if err != nil {
			return fail("metrics after coalescing batch: %v", err)
		}
		coalesced = after > before
	}
	if !coalesced {
		return fail("server_coalesced_total never advanced across 3 concurrent batches")
	}

	// Clean-run counters: zero failures while the server is still up
	// (the drain manifest re-checks after shutdown).
	for _, name := range []string{"server_failures_total", "expcache_put_failures_total", "rapl_window_errors_total"} {
		v, err := counter(client, base, name)
		if err != nil {
			return fail("metrics: %v", err)
		}
		if v != 0 {
			return fail("failure counter %s = %d on a clean smoke run", name, v)
		}
	}
	fmt.Fprintln(stderr, "smoke: ok (health, catalog, cached pair, coalesced batch, clean counters)")
	return 0
}

func get(c *http.Client, url string) ([]byte, int, http.Header, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, resp.Header, err
}

func post(c *http.Client, url, body string) ([]byte, int, http.Header, error) {
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, resp.Header, err
}

// counter scrapes one counter value from /metrics (Prometheus text:
// "name value" lines; histograms and labeled families never match the
// bare name exactly).
func counter(c *http.Client, base, name string) (int64, error) {
	body, code, _, err := get(c, base+"/metrics")
	if err != nil || code != http.StatusOK {
		return 0, fmt.Errorf("scrape /metrics: code %d err %w", code, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("counter %s not found in /metrics", name)
}

#!/bin/sh
# errgate.sh — fail CI when a non-test Go file discards the result of a
# call with `_ = f(...)`. Silently dropped errors are how this repo got
# its 0 W RAPL readings and swallowed cache-put failures; errors must be
# propagated, or counted in the obs registry with a comment saying why
# propagation is impossible (matched lines carrying an `//errgate:ok`
# marker are exempt).
#
# The pattern deliberately targets *call* results. Plain value discards
# (`_ = spec` to silence an unused variable) are not flagged.
set -eu
cd "$(dirname "$0")/.."

found=$(grep -rn --include='*.go' -E '^[[:space:]]*_ = [A-Za-z_][A-Za-z0-9_.]*\(' \
	--exclude='*_test.go' . | grep -v 'errgate:ok' || true)

if [ -n "$found" ]; then
	echo "errgate: discarded call results found (propagate the error or count it in obs):" >&2
	echo "$found" >&2
	exit 1
fi
echo "errgate: no discarded call results"

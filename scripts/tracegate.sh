#!/bin/sh
# tracegate.sh — fail CI when a non-test Go file outside internal/trace
# constructs a raw event ring (`trace.New(`) or holds a `*trace.Buffer`
# directly. Span-producing subsystems must record through the
# trace.Collector (System.EnableTrace): the collector is what pairs
# begin/end episodes, counts ring overwrites, and clones bitwise across
# System.Fork — a raw Buffer bypasses all three. Matched lines carrying
# a `//tracegate:ok` marker are exempt (say why).
set -eu
cd "$(dirname "$0")/.."

found=$(grep -rn --include='*.go' -E 'trace\.New\(|\*trace\.Buffer' \
	--exclude='*_test.go' . | grep -v '^\./internal/trace/' | grep -v 'tracegate:ok' || true)

if [ -n "$found" ]; then
	echo "tracegate: raw trace.Buffer use outside internal/trace (record via trace.Collector):" >&2
	echo "$found" >&2
	exit 1
fi
echo "tracegate: no raw trace.Buffer use outside internal/trace"

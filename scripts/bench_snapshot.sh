#!/bin/sh
# bench_snapshot.sh — run the hot-path microbenchmarks and write the
# results as BENCH_sim.json at the repo root. The snapshot is the
# reference point for performance regressions: re-run after touching
# internal/sim or the integration path in internal/core and compare.
#
# Usage:
#   scripts/bench_snapshot.sh [benchtime]            # refresh BENCH_sim.json
#   scripts/bench_snapshot.sh -compare [benchtime]   # perf-regression gate
#
# Every benchmark runs -count times (default 3, override with
# BENCH_COUNT) and the snapshot records the per-metric median, so one
# noisy sample — a CI neighbour stealing the core mid-run — cannot move
# the reference or trip the gate.
#
# Compare mode diffs a fresh (median-of-count) run against the
# committed snapshot instead of overwriting it: ns/op must stay within
# the tolerance (default +/-25%, override with BENCH_TOL=0.40 etc.),
# allocs/op must match exactly for lean benchmarks (reference < 32
# allocs/op — the hot paths whose contract is an exact, usually zero,
# count), batch benchmarks above that get +/-5% (amortized slice growth
# divided by b.N rounds differently between runs), and every benchmark
# in the snapshot must still exist. Exits nonzero on any regression —
# `make ci` runs this as its perf gate.
set -eu
cd "$(dirname "$0")/.."

mode=snapshot
if [ "${1:-}" = "-compare" ]; then
	mode=compare
	shift
fi
benchtime="${1:-200ms}"
count="${BENCH_COUNT:-3}"
tol="${BENCH_TOL:-0.25}"
ref="BENCH_sim.json"
out="$ref"
tmp="$(mktemp)"
fresh=""
cleanup() { rm -f "$tmp" ${fresh:+"$fresh"}; }
trap cleanup EXIT

if [ "$mode" = "compare" ]; then
	[ -f "$ref" ] || { echo "bench compare: no $ref snapshot to compare against" >&2; exit 1; }
	fresh="$(mktemp)"
	out="$fresh"
fi

go test -run=NONE -bench=. -benchmem -benchtime="$benchtime" -count="$count" \
	./internal/sim ./internal/core ./internal/fleet | tee "$tmp"

awk -v benchtime="$benchtime" -v count="$count" '
function median(arr, k, c,   i, j, t, v) {
	for (i = 1; i <= c; i++) v[i] = arr[k, i]
	for (i = 2; i <= c; i++) {
		t = v[i]
		for (j = i - 1; j >= 1 && v[j] > t; j--) v[j + 1] = v[j]
		v[j + 1] = t
	}
	if (c % 2) return v[(c + 1) / 2]
	return (v[c / 2] + v[c / 2 + 1]) / 2
}
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "B/op")      bytes = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	k = pkg SUBSEP name
	if (!(k in cnt)) { order[++n] = k; pkgof[k] = pkg; nameof[k] = name }
	c = ++cnt[k]
	nsv[k, c] = ns + 0; byv[k, c] = bytes + 0; alv[k, c] = allocs + 0
}
END {
	for (i = 1; i <= n; i++) {
		k = order[i]
		row = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.10g, \"bytes_per_op\": %.10g, \"allocs_per_op\": %.10g}",
			pkgof[k], nameof[k],
			median(nsv, k, cnt[k]), median(byv, k, cnt[k]), median(alv, k, cnt[k]))
		rows = rows (rows == "" ? "" : ",\n") row
	}
	printf "{\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n%s\n  ]\n", rows
	printf "}\n"
}
' "$tmp" > "$out"

if [ "$mode" = "snapshot" ]; then
	echo "wrote $out (median of $count runs)"
	exit 0
fi

echo ""
echo "comparing median-of-$count against $ref (ns/op tolerance +/-$tol, allocs/op exact below 32, else +/-5%)"
awk -v tol="$tol" '
function field(line, key,   re, s) {
	re = "\"" key "\": \"?[^,}\"]*"
	if (match(line, re)) {
		s = substr(line, RSTART, RLENGTH)
		sub(/^[^:]*: "?/, "", s)
		return s
	}
	return ""
}
/"name":/ {
	k = field($0, "pkg") "/" field($0, "name")
	if (NR == FNR) {
		refns[k] = field($0, "ns_per_op") + 0
		refal[k] = field($0, "allocs_per_op") + 0
		next
	}
	seen[k] = 1
	ns = field($0, "ns_per_op") + 0
	al = field($0, "allocs_per_op") + 0
	if (!(k in refns)) {
		printf "  new      %-55s %10.1f ns/op %3d allocs/op (no reference)\n", k, ns, al
		next
	}
	ratio = refns[k] > 0 ? ns / refns[k] : 1
	# Lean benchmarks pin an exact alloc count; batch benchmarks
	# (>= 32 allocs/op reference) amortize slice growth over b.N and
	# legitimately round +/-1-2 between runs, so they get 5% slack.
	albad = (al != refal[k])
	if (albad && refal[k] >= 32 && al <= refal[k] * 1.05 && al >= refal[k] * 0.95)
		albad = 0
	status = "ok"
	if (albad) {
		status = "FAIL"; why = sprintf("allocs %d != %d", al, refal[k]); fail++
	} else if (ratio > 1 + tol) {
		status = "FAIL"; why = sprintf("%.0f%% slower", (ratio - 1) * 100); fail++
	} else if (ratio < 1 - tol) {
		status = "note"; why = sprintf("%.0f%% faster than snapshot (refresh it?)", (1 - ratio) * 100)
	} else {
		why = sprintf("%+.0f%% ns/op", (ratio - 1) * 100)
	}
	printf "  %-8s %-55s %10.1f vs %10.1f ns/op  %s\n", status, k, ns, refns[k], why
}
END {
	if (NR == FNR) exit 0
	for (k in refns) if (!(k in seen)) {
		printf "  FAIL     %-55s missing from fresh run\n", k
		fail++
	}
	if (fail > 0) {
		printf "bench compare: %d regression(s) against the committed snapshot\n", fail
		exit 1
	}
	print "bench compare: ok"
}
' "$ref" "$fresh"

#!/bin/sh
# bench_snapshot.sh — run the hot-path microbenchmarks and write the
# results as BENCH_sim.json at the repo root. The snapshot is the
# reference point for performance regressions: re-run after touching
# internal/sim or the integration path in internal/core and compare.
#
# Usage: scripts/bench_snapshot.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-200ms}"
out="BENCH_sim.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench=. -benchmem -benchtime="$benchtime" \
	./internal/sim ./internal/core | tee "$tmp"

awk -v benchtime="$benchtime" '
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "B/op")      bytes = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	row = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		pkg, name, ns, bytes, allocs)
	rows = rows (rows == "" ? "" : ",\n") row
}
END {
	printf "{\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n%s\n  ]\n", rows
	printf "}\n"
}
' "$tmp" > "$out"

echo "wrote $out"

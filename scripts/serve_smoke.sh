#!/bin/sh
# serve_smoke.sh — the server lifecycle gate: build hswsimd, start it on
# a random port with a fresh cache and a manifest path, run the built-in
# smoke client against it (health, catalog, a cached request pair, a
# coalesced concurrent batch, clean failure counters), then SIGTERM it
# and require a clean graceful drain: exit code 0 and a flushed obs
# manifest whose failure counters are all zero (checked by the binary's
# own -check-manifest validator, not by grepping JSON in shell).
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
	if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
		kill -KILL "$pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building hswsimd"
go build -o "$tmp/hswsimd" ./cmd/hswsimd

"$tmp/hswsimd" \
	-addr 127.0.0.1:0 \
	-addr-file "$tmp/addr" \
	-cache-dir "$tmp/cache" \
	-report "$tmp/manifest.json" \
	-drain-timeout 60s \
	2>"$tmp/server.log" &
pid=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
		echo "serve-smoke: server never came up; log:" >&2
		cat "$tmp/server.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: hswsimd up on $addr"

"$tmp/hswsimd" -smoke "http://$addr" || {
	echo "serve-smoke: smoke client failed; server log:" >&2
	cat "$tmp/server.log" >&2
	exit 1
}

echo "serve-smoke: sending SIGTERM"
kill -TERM "$pid"
code=0
wait "$pid" || code=$?
pid=""
if [ "$code" -ne 0 ]; then
	echo "serve-smoke: hswsimd exited $code after SIGTERM (want 0); log:" >&2
	cat "$tmp/server.log" >&2
	exit 1
fi

"$tmp/hswsimd" -check-manifest "$tmp/manifest.json" || {
	echo "serve-smoke: drain manifest failed validation; server log:" >&2
	cat "$tmp/server.log" >&2
	exit 1
}
echo "serve-smoke: clean drain, manifest validated"

package hswsim

import (
	"hswsim/internal/sched"
	"hswsim/internal/uarch"
)

// Task is a unit of scheduled work: a kernel run for a fixed
// instruction budget.
type Task = sched.Task

// TaskResult records a completed task's timeline.
type TaskResult = sched.Result

// SchedPolicy selects the p-state and idle behaviour for scheduled work.
type SchedPolicy = sched.Policy

// Scheduler dispatches tasks over a CPU set with a policy, sleeping
// idle cores through a (measured-table) idle governor.
type Scheduler = sched.Scheduler

// RaceToIdlePolicy runs tasks at turbo and sleeps deeply in between.
func RaceToIdlePolicy() SchedPolicy { return sched.RaceToIdle() }

// PacePolicy runs tasks at a fixed p-state.
func PacePolicy(f MHz) SchedPolicy { return sched.Pace(uarch.MHz(f)) }

// NewScheduler attaches a scheduler to the given CPUs.
func NewScheduler(sys *System, cpus []int, p SchedPolicy) *Scheduler {
	return sched.New(sys, cpus, p)
}
